//! The multi-writer guarded-update pipeline: [`ConcurrentDatabase`].
//!
//! A cheaply clonable (`Arc`-shared) handle that any number of writer
//! threads commit through. Each transaction:
//!
//! 1. **begins** against a pinned MVCC snapshot
//!    ([`ConcurrentDatabase::begin`] → [`TxnBuilder`]);
//! 2. is **checked** by the paper's incremental integrity method
//!    *against that snapshot* — the expensive phase, running outside
//!    any lock, recording the relation-level read set the verdict
//!    depends on;
//! 3. is **submitted** to the shared
//!    [`CommitQueue`](uniform_datalog::txn::CommitQueue), which admits
//!    it with first-committer-wins conflict detection: writers over
//!    disjoint relations commit without invalidating each other, while
//!    a transaction whose read or write set overlaps a later commit's
//!    writes is refused with a typed, retriable [`TxnError::Conflict`].
//!
//! Admitted schedules are serializable: replaying the admitted
//! transactions sequentially in commit order reproduces the same EDB,
//! canonical model and (empty) violation lists — the property
//! `tests/prop_commit_serializability.rs` asserts over randomized
//! multi-writer schedules.

use crate::facade::{UniformDatabase, UniformError, UniformOptions};
use std::fmt;
use std::sync::Arc;
use uniform_datalog::txn::{
    CommitError, CommitQueue, CommitReceipt, MaintenanceCounters, ModelPath,
};
use uniform_datalog::{Database, Snapshot, Transaction, TxnBuilder, Update};
use uniform_integrity::{CheckReport, Checker, RuleUpdate};

/// Why a guarded concurrent commit failed.
#[derive(Debug)]
pub enum TxnError {
    /// The transaction would violate integrity, checked on a snapshot
    /// that was still fresh for the check's read set at rejection time
    /// (stale rejections surface as [`TxnError::Conflict`] instead).
    /// Not retriable: the same updates against the same state fail the
    /// same way.
    Rejected(Box<CheckReport>),
    /// A first-committer won a relation this transaction depends on.
    /// Retriable: re-begin against a fresh snapshot.
    Conflict {
        relations: Vec<uniform_logic::Sym>,
        committed_version: u64,
    },
    /// The transaction out-lived the commit queue's conflict log.
    /// Retriable: re-begin against a fresh snapshot.
    SnapshotTooOld { begin_version: u64, horizon: u64 },
    /// An update misuses a predicate's arity (typed, from
    /// [`uniform_datalog::ApplyError`]). Not retriable.
    Apply(uniform_datalog::ApplyError),
    /// `commit_with_retry` gave up; `last` is the final refusal.
    RetriesExhausted {
        attempts: usize,
        last: Box<TxnError>,
    },
}

impl TxnError {
    /// Would re-beginning against a fresh snapshot possibly succeed?
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            TxnError::Conflict { .. } | TxnError::SnapshotTooOld { .. }
        )
    }

    fn from_commit(e: CommitError) -> TxnError {
        match e {
            CommitError::Conflict {
                relations,
                committed_version,
            } => TxnError::Conflict {
                relations,
                committed_version,
            },
            CommitError::SnapshotTooOld {
                begin_version,
                horizon,
            } => TxnError::SnapshotTooOld {
                begin_version,
                horizon,
            },
            CommitError::Apply(e) => TxnError::Apply(e),
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Rejected(report) => {
                write!(f, "transaction rejected; violated: ")?;
                for (i, v) in report.violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.constraint)?;
                    if let Some(culprit) = &v.culprit {
                        write!(f, " (via {culprit})")?;
                    }
                }
                Ok(())
            }
            TxnError::Conflict {
                relations,
                committed_version,
            } => write!(
                f,
                "commit conflict on {} (first committer won at version {committed_version})",
                relations
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            TxnError::SnapshotTooOld {
                begin_version,
                horizon,
            } => write!(
                f,
                "snapshot too old: began at version {begin_version}, conflict log starts at {horizon}"
            ),
            TxnError::Apply(e) => write!(f, "{e}"),
            TxnError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// An admitted guarded commit.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The database version after the commit.
    pub version: u64,
    /// The integrity report of the snapshot-time check (satisfied).
    pub report: CheckReport,
    /// Conflict-retries spent before admission (0 on the direct path).
    pub retries: usize,
    /// The Def. 1 effective updates, in staging order.
    pub effective: Vec<Update>,
    /// How post-commit snapshots get their canonical model: maintained
    /// incrementally by the commit queue, or rematerialized from scratch
    /// (see [`ModelPath`]).
    pub model_path: ModelPath,
}

struct Shared {
    queue: CommitQueue,
    options: UniformOptions,
}

/// See the module docs.
#[derive(Clone)]
pub struct ConcurrentDatabase {
    shared: Arc<Shared>,
}

impl ConcurrentDatabase {
    /// Share a façade database among writers. Fails never; the façade's
    /// invariant (initial state consistent) carries over.
    pub fn new(db: UniformDatabase) -> ConcurrentDatabase {
        let (db, options) = db.into_parts();
        ConcurrentDatabase::from_database(db, options)
    }

    /// Share a bare [`Database`] with explicit options.
    pub fn from_database(db: Database, options: UniformOptions) -> ConcurrentDatabase {
        let queue = if options.maintain_model {
            CommitQueue::new(db)
        } else {
            CommitQueue::without_maintenance(db)
        };
        ConcurrentDatabase {
            shared: Arc::new(Shared { queue, options }),
        }
    }

    /// Parse a program and share it (see [`UniformDatabase::parse`]).
    pub fn parse(src: &str) -> Result<ConcurrentDatabase, UniformError> {
        Ok(ConcurrentDatabase::new(UniformDatabase::parse(src)?))
    }

    /// Pin a snapshot and open a transaction.
    pub fn begin(&self) -> TxnBuilder {
        self.shared.queue.begin()
    }

    /// A read snapshot of the latest committed state.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.queue.snapshot()
    }

    /// The latest committed version.
    pub fn version(&self) -> u64 {
        self.shared.queue.version()
    }

    /// Run `f` on the live database under the queue lock (reads only).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        self.shared.queue.with_db(f)
    }

    /// Check `txn` against its pinned snapshot and, if integrity is
    /// preserved, submit it for first-committer-wins admission. The
    /// check runs entirely on the snapshot — concurrent callers only
    /// serialize on the final admission step.
    pub fn commit(&self, txn: &TxnBuilder) -> Result<CommitOutcome, TxnError> {
        let mut txn = txn.clone();
        if let Err(e) = txn.validate_arities() {
            return Err(TxnError::Apply(e));
        }
        let tx = txn.transaction();
        let report = Checker::for_snapshot_with_options(txn.snapshot(), self.shared.options.check)
            .check(&tx);
        // The admission decision needs every relation the verdict read —
        // and so does deciding whether a *rejection* is still current.
        txn.record_reads(report.reads.iter().copied());
        if !report.satisfied {
            // A rejection is only final if its snapshot is still fresh
            // for the read set; if a later commit wrote into it, the
            // verdict may be outdated — surface a retriable conflict so
            // the caller re-checks against a fresh snapshot.
            if let Err(e) = self.shared.queue.check_freshness(&txn) {
                return Err(TxnError::from_commit(e));
            }
            return Err(TxnError::Rejected(Box::new(report)));
        }
        match self.shared.queue.commit(&txn) {
            Ok(CommitReceipt {
                version,
                effective,
                model_path,
            }) => Ok(CommitOutcome {
                version,
                report,
                retries: 0,
                effective,
                model_path,
            }),
            Err(e) => Err(TxnError::from_commit(e)),
        }
    }

    /// The standing model-path marker: how the next snapshot of the
    /// current state gets its canonical model.
    pub fn model_path(&self) -> ModelPath {
        self.shared.queue.model_path()
    }

    /// Running model-maintenance counters of the underlying queue.
    pub fn maintenance(&self) -> MaintenanceCounters {
        self.shared.queue.maintenance()
    }

    /// Run a raw schema mutation under the queue lock (see
    /// [`CommitQueue::update_schema`]): the maintained model is reset
    /// and in-flight transactions are fenced with a retriable
    /// [`TxnError::SnapshotTooOld`]. Prefer the guarded
    /// [`ConcurrentDatabase::try_add_rule`] for rule additions.
    pub fn update_schema<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.shared.queue.update_schema(f)
    }

    /// Add a rule, guarded like [`UniformDatabase::try_add_rule`] (the
    /// same shared protocol: stratification, schema satisfiability,
    /// incremental integrity check), atomically with respect to
    /// concurrent writers: the whole check-and-install runs under the
    /// queue lock, so no commit can interleave between the verdict and
    /// the installation. Returns `false` when the rule was already
    /// present.
    pub fn try_add_rule(&self, rule: &str) -> Result<bool, UniformError> {
        let parsed: uniform_logic::Rule = uniform_logic::parse_rule(rule)?;
        let options = &self.shared.options;
        self.shared.queue.update_schema(|db| {
            crate::facade::guarded_rule_update(db, options, RuleUpdate::Add(parsed))
        })
    }

    /// Commit `updates` as one transaction, re-beginning against a
    /// fresh snapshot after each conflict, up to `max_attempts` times.
    /// Integrity rejections are returned immediately (they are
    /// state-dependent, not race-dependent).
    pub fn commit_updates_with_retry(
        &self,
        updates: &[Update],
        max_attempts: usize,
    ) -> Result<CommitOutcome, TxnError> {
        let mut last: Option<TxnError> = None;
        for attempt in 0..max_attempts.max(1) {
            let mut txn = self.begin();
            for u in updates {
                txn.stage(u.clone());
            }
            match self.commit(&txn) {
                Ok(mut outcome) => {
                    outcome.retries = attempt;
                    return Ok(outcome);
                }
                Err(e) if e.is_retriable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TxnError::RetriesExhausted {
            attempts: max_attempts.max(1),
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Commit a [`Transaction`] once (no retry), from a fresh snapshot.
    pub fn commit_transaction(&self, tx: &Transaction) -> Result<CommitOutcome, TxnError> {
        let mut txn = self.begin();
        for u in &tx.updates {
            txn.stage(u.clone());
        }
        self.commit(&txn)
    }
}

impl fmt::Debug for ConcurrentDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConcurrentDatabase({:?})", self.shared.queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::Fact;

    const ORG: &str = "
        member(X, Y) :- leads(X, Y).
        constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        employee(ann).
        department(sales).
        leads(ann, sales).
    ";

    fn upd(insert: bool, p: &str, args: &[&str]) -> Update {
        let fact = Fact::parse_like(p, args);
        if insert {
            Update::insert(fact)
        } else {
            Update::delete(fact)
        }
    }

    #[test]
    fn guarded_commit_accepts_and_rejects() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        // A full department with its leader: accepted.
        let mut good = db.begin();
        good.stage(upd(true, "department", &["hr"]));
        good.stage(upd(true, "employee", &["bob"]));
        good.stage(upd(true, "leads", &["bob", "hr"]));
        let outcome = db.commit(&good).unwrap();
        assert!(outcome.report.satisfied);
        assert_eq!(outcome.effective.len(), 3);
        // A dangling department: rejected with the violating constraint.
        let mut bad = db.begin();
        bad.stage(upd(true, "department", &["void"]));
        match db.commit(&bad).unwrap_err() {
            TxnError::Rejected(report) => {
                assert_eq!(report.violations[0].constraint, "led");
            }
            other => panic!("expected rejection, got {other}"),
        }
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn conflicting_writers_get_typed_conflicts_and_retries_succeed() {
        let db = ConcurrentDatabase::parse("seat(a).").unwrap();
        let mut t1 = db.begin();
        t1.stage(upd(false, "seat", &["a"]));
        let mut t2 = db.begin();
        t2.stage(upd(true, "seat", &["b"]));
        db.commit(&t1).unwrap();
        // t2 writes the relation t1 just changed: first committer wins.
        let err = db.commit(&t2).unwrap_err();
        assert!(err.is_retriable(), "{err}");
        // The retry path re-begins and lands it.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "seat", &["b"])], 4)
            .unwrap();
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.facts().contains(&Fact::parse_like("seat", &["b"]))));
    }

    #[test]
    fn rejections_are_not_retried() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let err = db
            .commit_updates_with_retry(&[upd(true, "p", &["zzz"])], 8)
            .unwrap_err();
        assert!(matches!(err, TxnError::Rejected(_)), "{err}");
    }

    #[test]
    fn snapshot_isolated_check_ignores_later_commits_to_unrelated_relations() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // An unrelated commit lands in between.
        db.commit_updates_with_retry(&[upd(true, "noise", &["n1"])], 1)
            .unwrap();
        // The pinned check still admits: `noise` is outside its read set.
        let outcome = db.commit(&t).unwrap();
        assert!(outcome.report.satisfied);
    }

    #[test]
    fn dependent_read_conflicts_abort_stale_checks() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        // t's admissibility depends on q(a) existing at its snapshot.
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // Another writer deletes q(a) and commits first.
        db.commit_updates_with_retry(&[upd(false, "q", &["a"])], 1)
            .unwrap();
        let err = db.commit(&t).unwrap_err();
        match err {
            TxnError::Conflict { relations, .. } => {
                assert!(relations.iter().any(|s| s.as_str() == "q"), "{relations:?}");
            }
            other => panic!("stale check must conflict, got {other}"),
        }
        // And the retry correctly *rejects* now that q(a) is gone.
        let err = db
            .commit_updates_with_retry(&[upd(true, "p", &["a"])], 4)
            .unwrap_err();
        assert!(matches!(err, TxnError::Rejected(_)), "{err}");
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn stale_rejections_surface_as_retriable_conflicts() {
        let db = ConcurrentDatabase::parse("constraint c: forall X: p(X) -> q(X).").unwrap();
        // At t's snapshot q(a) is absent, so p(a) would be rejected…
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // …but another writer commits q(a) first: the rejection verdict
        // is stale and must come back retriable, not final.
        db.commit_updates_with_retry(&[upd(true, "q", &["a"])], 1)
            .unwrap();
        let err = db.commit(&t).unwrap_err();
        assert!(
            err.is_retriable(),
            "stale rejection must be retriable: {err}"
        );
        // The retry path re-checks on a fresh snapshot and admits.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "p", &["a"])], 4)
            .unwrap();
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn guarded_commits_maintain_the_model() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let outcome = db
            .commit_updates_with_retry(
                &[
                    upd(true, "department", &["hr"]),
                    upd(true, "employee", &["bob"]),
                    upd(true, "leads", &["bob", "hr"]),
                ],
                4,
            )
            .unwrap();
        assert_eq!(outcome.model_path, uniform_datalog::ModelPath::Maintained);
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Maintained);
        // The induced member(bob, hr) is in the maintained model.
        let snap = db.snapshot();
        assert!(snap.holds(&Fact::parse_like("member", &["bob", "hr"])));
        assert!(db.maintenance().maintained >= 1);

        // Disabling maintenance reproduces invalidate-on-commit.
        let plain = ConcurrentDatabase::from_database(
            UniformDatabase::parse(ORG).unwrap().into_parts().0,
            UniformOptions {
                maintain_model: false,
                ..UniformOptions::default()
            },
        );
        let outcome = plain
            .commit_updates_with_retry(
                &[
                    upd(true, "employee", &["zoe"]),
                    upd(true, "leads", &["zoe", "ops"]),
                    upd(true, "department", &["ops"]),
                ],
                4,
            )
            .unwrap();
        assert_eq!(
            outcome.model_path,
            uniform_datalog::ModelPath::Rematerialized
        );
    }

    #[test]
    fn rule_additions_are_guarded_and_reset_maintenance() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        db.commit_updates_with_retry(&[upd(true, "veteran", &["ann"])], 1)
            .unwrap();
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Maintained);

        // An in-flight transaction is fenced by the schema change.
        let mut inflight = db.begin();
        inflight.stage(upd(true, "veteran", &["zed"]));

        assert!(db.try_add_rule("boss(X) :- leads(X, Y).").unwrap());
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Rematerialized);
        assert_eq!(db.maintenance().schema_resets, 1);
        let err = db.commit(&inflight).unwrap_err();
        assert!(
            matches!(err, TxnError::SnapshotTooOld { .. }),
            "schema change must fence pinned checks: {err}"
        );
        assert!(db.snapshot().holds(&Fact::parse_like("boss", &["ann"])));

        // Re-adding is a no-op; unstratifiable and violating rules are
        // refused without resetting anything further.
        assert!(!db.try_add_rule("boss(X) :- leads(X, Y).").unwrap());
        assert!(db
            .try_add_rule("absent(X) :- employee(X), not absent(X).")
            .is_err());
        assert_eq!(db.maintenance().schema_resets, 1);

        // Maintenance resumes on the next effective commit.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "veteran", &["zed"])], 4)
            .unwrap();
        assert_eq!(outcome.model_path, uniform_datalog::ModelPath::Maintained);
        assert!(db.snapshot().holds(&Fact::parse_like("boss", &["ann"])));
    }

    #[test]
    fn multi_writer_threads_preserve_integrity() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        let name = format!("d{w}_{i}");
                        let mgr = format!("m{w}_{i}");
                        let updates = [
                            upd(true, "department", &[&name]),
                            upd(true, "employee", &[&mgr]),
                            upd(true, "leads", &[&mgr, &name]),
                        ];
                        db.commit_updates_with_retry(&updates, 16).unwrap();
                    }
                });
            }
        });
        assert!(db.with_database(|d| d.is_consistent()));
        // 3 seed facts + 3 per committed department.
        assert_eq!(db.with_database(|d| d.facts().len()), 3 + 4 * 8 * 3);
    }
}
