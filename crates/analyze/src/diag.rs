//! Diagnostics: stable lint codes, severities, and the analyzer's error
//! type.
//!
//! Every finding the analyzer can produce carries a stable `UAxxxx` code
//! (UA01xx structural, UA02xx flow, UA03xx satisfiability), a severity,
//! a human-readable message, and — when the program was parsed from text
//! — the source span of the offending item. Codes are part of the public
//! interface: allowlists, CI gates and tests match on them, so a code is
//! never reused for a different finding.

use std::fmt;
use uniform_logic::Span;

/// How serious a diagnostic is.
///
/// `Error` diagnostics make the schema unusable (the analyzer's
/// [`refusal`](crate::AnalyzedProgram::refusal) surfaces them and
/// integration layers refuse the schema); warnings and infos are
/// advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint codes.
///
/// | Code   | Name                        | Default severity |
/// |--------|-----------------------------|------------------|
/// | UA0101 | arity mismatch              | warning          |
/// | UA0102 | singleton variable          | warning          |
/// | UA0103 | unsafe item                 | error            |
/// | UA0104 | unstratified recursion      | error            |
/// | UA0201 | dead rule                   | warning          |
/// | UA0202 | unreachable from constraints| info             |
/// | UA0203 | empty by construction       | warning          |
/// | UA0204 | closure covers schema       | warning          |
/// | UA0301 | unsatisfiable constraint set| error            |
/// | UA0302 | unsatisfiable constraint    | error            |
/// | UA0303 | tautological constraint     | warning          |
/// | UA0304 | satisfiability unknown      | info             |
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// UA0101: a predicate is used with two different arities.
    ArityMismatch,
    /// UA0102: a variable occurs exactly once in a rule (likely a typo;
    /// prefix with `_` to silence).
    SingletonVariable,
    /// UA0103: an item is not range-restricted / cannot be normalized
    /// into a closed RQ formula (source-level analysis only — the
    /// constructors reject these before a program exists).
    UnsafeItem,
    /// UA0104: recursion through negation (source-level analysis only).
    Unstratified,
    /// UA0201: a rule body consults a predicate that has no rules and no
    /// declared relation — the rule can never fire.
    DeadRule,
    /// UA0202: an IDB predicate is not reachable from any constraint;
    /// integrity checking never consults it (queries still may).
    UnreachableFromConstraints,
    /// UA0203: a rule body contains complementary literals and is
    /// unsatisfiable by construction.
    EmptyByConstruction,
    /// UA0204: the union of the constraint closures covers every
    /// predicate in the schema — every commit invalidates cached
    /// certain-answer verdicts and repair reports; carry-forward never
    /// applies.
    ClosureCoversSchema,
    /// UA0301: the constraint set as a whole admits no database state at
    /// all — the schema is unusable regardless of the facts.
    UnsatisfiableSet,
    /// UA0302: a single constraint admits no database state on its own.
    UnsatisfiableConstraint,
    /// UA0303: a constraint holds in every database state — it never
    /// rejects anything and only costs checking time.
    TautologicalConstraint,
    /// UA0304: the bounded satisfiability search exhausted its budget
    /// before classifying (the property is only semi-decidable, §4).
    SatisfiabilityUnknown,
}

impl Code {
    /// The stable `UAxxxx` string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ArityMismatch => "UA0101",
            Code::SingletonVariable => "UA0102",
            Code::UnsafeItem => "UA0103",
            Code::Unstratified => "UA0104",
            Code::DeadRule => "UA0201",
            Code::UnreachableFromConstraints => "UA0202",
            Code::EmptyByConstruction => "UA0203",
            Code::ClosureCoversSchema => "UA0204",
            Code::UnsatisfiableSet => "UA0301",
            Code::UnsatisfiableConstraint => "UA0302",
            Code::TautologicalConstraint => "UA0303",
            Code::SatisfiabilityUnknown => "UA0304",
        }
    }

    /// The severity this code is reported with.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnsafeItem
            | Code::Unstratified
            | Code::UnsatisfiableSet
            | Code::UnsatisfiableConstraint => Severity::Error,
            Code::ArityMismatch
            | Code::SingletonVariable
            | Code::DeadRule
            | Code::EmptyByConstruction
            | Code::ClosureCoversSchema
            | Code::TautologicalConstraint => Severity::Warning,
            Code::UnreachableFromConstraints | Code::SatisfiabilityUnknown => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Source position of the offending item, when the program was
    /// parsed from text (programmatically built schemas have no spans).
    pub span: Option<Span>,
    /// The item the finding is about: a constraint name or a rendered
    /// rule, when one applies.
    pub item: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
            item: None,
        }
    }

    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    pub fn with_item(mut self, item: impl Into<String>) -> Diagnostic {
        self.item = Some(item.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The UA0301 finding for a constraint set proven unsatisfiable —
    /// one constructor so the analyzer's classification pass and the
    /// schema gates that refuse on a raw `SatChecker` verdict emit the
    /// same diagnostic.
    pub fn unsatisfiable_set(n_constraints: usize) -> Diagnostic {
        Diagnostic::new(
            Code::UnsatisfiableSet,
            format!(
                "the {n_constraints} constraints are jointly unsatisfiable: no database \
                 state satisfies them together, so the schema admits no consistent state"
            ),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(span) = self.span {
            write!(f, " at {span}")?;
        }
        if let Some(item) = &self.item {
            write!(f, " `{item}`")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Why an [`AnalyzeError`] was raised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalyzeErrorKind {
    /// The program could not even be constructed from source (parse
    /// error, unsafe rule, unstratified recursion, open constraint).
    Source,
    /// The program is well-formed but statically rejected: at least one
    /// error-severity diagnostic (an unsatisfiable constraint set is the
    /// canonical case).
    Rejected,
}

/// Analysis failure: the schema is unusable, with the diagnostics that
/// prove it. At least one diagnostic has [`Severity::Error`].
#[derive(Clone, Debug)]
pub struct AnalyzeError {
    pub kind: AnalyzeErrorKind,
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalyzeError {
    pub fn new(kind: AnalyzeErrorKind, diagnostics: Vec<Diagnostic>) -> AnalyzeError {
        AnalyzeError { kind, diagnostics }
    }

    /// The refusal for a constraint set proven unsatisfiable (UA0301).
    pub fn unsatisfiable_set(n_constraints: usize) -> AnalyzeError {
        AnalyzeError::new(
            AnalyzeErrorKind::Rejected,
            vec![Diagnostic::unsatisfiable_set(n_constraints)],
        )
    }

    /// The first error-severity diagnostic (the headline).
    pub fn primary(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.is_error())
            .or(self.diagnostics.first())
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AnalyzeErrorKind::Source => write!(f, "program rejected at source level")?,
            AnalyzeErrorKind::Rejected => write!(f, "schema statically rejected")?,
        }
        for d in &self.diagnostics {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalyzeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::ArityMismatch,
            Code::SingletonVariable,
            Code::UnsafeItem,
            Code::Unstratified,
            Code::DeadRule,
            Code::UnreachableFromConstraints,
            Code::EmptyByConstruction,
            Code::ClosureCoversSchema,
            Code::UnsatisfiableSet,
            Code::UnsatisfiableConstraint,
            Code::TautologicalConstraint,
            Code::SatisfiabilityUnknown,
        ];
        let mut seen: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len());
        for c in all {
            assert!(c.as_str().starts_with("UA0"), "{c}");
            assert_eq!(c.as_str().len(), 6);
        }
    }

    #[test]
    fn display_carries_code_span_and_item() {
        let d = Diagnostic::new(Code::SingletonVariable, "singleton variable Y")
            .with_span(Some(Span { line: 3, col: 7 }))
            .with_item("boss(X) :- leads(X,Y)");
        assert_eq!(
            d.to_string(),
            "warning[UA0102] at 3:7 `boss(X) :- leads(X,Y)`: singleton variable Y"
        );
    }
}
