//! # uniform-analyze
//!
//! Static analysis of a registered deductive-database program — rules,
//! integrity constraints, declared relations — at schema registration
//! time, before any fact is consulted.
//!
//! The paper's central duality is *satisfaction* (do the current facts
//! satisfy the constraints?) versus *satisfiability* (does any state at
//! all?). Satisfaction is a runtime question; satisfiability — and a
//! surprising amount of the machinery built around satisfaction — is a
//! pure function of the schema. This crate moves that schema-only work
//! to a single prepare-time pass with three layers:
//!
//! 1. **Lints** ([`Diagnostic`], stable `UAxxxx` [`Code`]s with source
//!    [`Span`](uniform_logic::Span)s when the program came from text):
//!    UA01xx structural (arity mismatches, singleton variables, unsafe
//!    items, unstratified recursion), UA02xx flow (dead rules,
//!    predicates unreachable from constraints, empty-by-construction
//!    bodies, constraint closures covering the whole schema), UA03xx
//!    satisfiability (per-constraint and whole-set classification into
//!    [`SatClass`]).
//! 2. **Artifacts** ([`AnalyzedProgram`]): the predicate dependency
//!    graph, per-constraint predicate closures (exactly what
//!    `RepairEngine::report_closure` re-derives per repair report), and
//!    the shared read-pattern templates that `CheckReport::read_patterns`
//!    specializes with constants.
//! 3. **Refusal** ([`AnalyzedProgram::refusal`]): error-severity
//!    findings — an unsatisfiable constraint set above all — turn into a
//!    typed [`AnalyzeError`] so integration layers reject impossible
//!    schemas *before* touching the commit queue, distinct from a
//!    merely-violated (repairable) constraint.
//!
//! ```
//! use uniform_analyze::{analyze_source, Code, SatClass};
//!
//! let program = r#"
//!     emp(ann, sales).
//!     dept(sales).
//!     works(X) :- emp(X, D), dept(D).
//!     constraint staffed: forall D: dept(D) -> exists X: emp(X, D).
//! "#;
//! let analyzed = analyze_source(program).unwrap();
//! assert!(analyzed.refusal().is_none());
//! assert_eq!(analyzed.set_class(), SatClass::Contingent);
//!
//! // An impossible schema is refused statically, facts notwithstanding.
//! let impossible = r#"
//!     p(a).
//!     constraint some: exists X: p(X).
//!     constraint none: forall X: p(X) -> q(X) & ~q(X).
//! "#;
//! let analyzed = analyze_source(impossible).unwrap();
//! let err = analyzed.refusal().unwrap();
//! assert!(err.diagnostics.iter().any(|d| d.code == Code::UnsatisfiableSet));
//! ```

pub mod diag;
mod lint;
pub mod program;
pub mod sat;

pub use diag::{AnalyzeError, AnalyzeErrorKind, Code, Diagnostic, Severity};
pub use program::{analyze_source, AnalyzeOptions, AnalyzedProgram, Analyzer};
pub use sat::{SatAnalysis, SatClass};

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::RuleSet;
    use uniform_logic::{normalize, parse_formula, parse_rule, Constraint, Sym};

    fn rules(srcs: &[&str]) -> RuleSet {
        RuleSet::new(srcs.iter().map(|s| parse_rule(s).unwrap()).collect()).unwrap()
    }

    fn ic(name: &str, src: &str) -> Constraint {
        Constraint::new(name, normalize(&parse_formula(src).unwrap()).unwrap())
    }

    #[test]
    fn clean_schema_has_no_findings() {
        let ap = Analyzer::new(
            rules(&["works(X,D) :- emp(X,D), dept(D)."]),
            vec![ic("staffed", "forall D: dept(D) -> exists X: works(X, D)")],
        )
        .with_declared(vec![(Sym::new("emp"), 2), (Sym::new("dept"), 1)])
        .analyze();
        let lint_codes: Vec<Code> = ap.lint_diagnostics().iter().map(|d| d.code).collect();
        // The constraint reaches works -> emp, dept: the whole schema.
        assert_eq!(lint_codes, vec![Code::ClosureCoversSchema]);
        assert!(ap.refusal().is_none());
        assert_eq!(ap.set_class(), SatClass::Contingent);
    }

    #[test]
    fn arity_mismatch_reported_against_first_use() {
        let ap = Analyzer::new(
            rules(&["p(X) :- q(X, Y), r(Y)."]),
            vec![ic("c", "forall X: q(X) -> r(X)")],
        )
        .analyze();
        let d = ap
            .lint_diagnostics()
            .iter()
            .find(|d| d.code == Code::ArityMismatch)
            .expect("arity mismatch");
        assert!(d.message.contains("arity 1"), "{}", d.message);
        assert!(d.message.contains("arity 2"), "{}", d.message);
        assert_eq!(d.item.as_deref(), Some("c"));
    }

    #[test]
    fn singleton_variable_flagged_underscore_exempt() {
        let ap = Analyzer::new(
            rules(&["boss(X) :- leads(X, Y).", "p(X) :- q(X, _Z)."]),
            vec![],
        )
        .analyze();
        let singles: Vec<&Diagnostic> = ap
            .lint_diagnostics()
            .iter()
            .filter(|d| d.code == Code::SingletonVariable)
            .collect();
        assert_eq!(singles.len(), 1);
        assert!(singles[0].message.contains('Y'), "{}", singles[0].message);
    }

    #[test]
    fn dead_rule_needs_declared_edb() {
        let rs = rules(&["p(X) :- ghost(X)."]);
        let quiet = Analyzer::new(rs.clone(), vec![]).analyze();
        assert!(quiet
            .lint_diagnostics()
            .iter()
            .all(|d| d.code != Code::DeadRule));
        let loud = Analyzer::new(rs, vec![])
            .with_declared(vec![(Sym::new("q"), 1)])
            .analyze();
        let d = loud
            .lint_diagnostics()
            .iter()
            .find(|d| d.code == Code::DeadRule)
            .expect("dead rule");
        assert!(d.message.contains("ghost"), "{}", d.message);
    }

    #[test]
    fn unreachable_predicate_reported_per_pred() {
        let ap = Analyzer::new(
            rules(&["a(X) :- e(X).", "b(X) :- e(X)."]),
            vec![ic("c", "forall X: a(X) -> a(X)")],
        )
        .analyze();
        let unreachable: Vec<&Diagnostic> = ap
            .lint_diagnostics()
            .iter()
            .filter(|d| d.code == Code::UnreachableFromConstraints)
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert!(unreachable[0].message.contains("predicate b"));
    }

    #[test]
    fn contradictory_body_is_empty_by_construction() {
        let ap = Analyzer::new(rules(&["p(X) :- q(X), not q(X)."]), vec![]).analyze();
        assert!(ap
            .lint_diagnostics()
            .iter()
            .any(|d| d.code == Code::EmptyByConstruction));
    }

    #[test]
    fn closures_and_union_follow_reachability() {
        let ap = Analyzer::new(
            rules(&["works(X,D) :- emp(X,D), dept(D)."]),
            vec![
                ic("w", "forall X: forall D: works(X, D) -> dept(D)"),
                ic("d", "forall D: dept(D) -> dept(D)"),
            ],
        )
        .analyze();
        let names = |syms: &[Sym]| {
            let mut v: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            names(ap.constraint_closure("w").unwrap()),
            vec!["dept", "emp", "works"]
        );
        assert_eq!(names(ap.constraint_closure("d").unwrap()), vec!["dept"]);
        assert_eq!(names(ap.closure_union()), vec!["dept", "emp", "works"]);
        assert_eq!(names(ap.schema_predicates()), vec!["dept", "emp", "works"]);
        assert!(ap.constraint_closure("nope").is_none());
    }

    #[test]
    fn unsatisfiable_set_is_refused_tautology_warned() {
        let ap = Analyzer::new(
            RuleSet::empty(),
            vec![
                ic("some", "exists X: p(X)"),
                ic("none", "forall X: p(X) -> q(X) & ~q(X)"),
                ic("triv", "forall X: p(X) -> p(X)"),
            ],
        )
        .analyze();
        let sat = ap.sat();
        assert_eq!(sat.set_class, SatClass::Unsatisfiable);
        assert_eq!(
            sat.per_constraint,
            vec![
                SatClass::Contingent,
                SatClass::Contingent,
                SatClass::Tautological
            ]
        );
        let err = ap.refusal().expect("refused");
        assert_eq!(err.kind, AnalyzeErrorKind::Rejected);
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.code == Code::UnsatisfiableSet));
        assert!(ap
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::TautologicalConstraint && d.item.as_deref() == Some("triv")));
    }

    #[test]
    fn single_unsatisfiable_constraint_classified_without_set_search() {
        let ap = Analyzer::new(
            RuleSet::empty(),
            vec![ic("never", "exists X: p(X) & ~p(X)")],
        )
        .analyze();
        assert_eq!(ap.sat().per_constraint, vec![SatClass::Unsatisfiable]);
        assert_eq!(ap.set_class(), SatClass::Unsatisfiable);
        let err = ap.refusal().unwrap();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.code == Code::UnsatisfiableConstraint));
    }

    #[test]
    fn source_analysis_carries_spans() {
        let src = "emp(ann, sales).\nworks(X) :- emp(X, D).\nconstraint c: forall X: works(X) -> works(X).\n";
        let ap = analyze_source(src).unwrap();
        let single = ap
            .lint_diagnostics()
            .iter()
            .find(|d| d.code == Code::SingletonVariable)
            .expect("singleton D");
        assert_eq!(single.span.map(|s| s.line), Some(2));
        assert!(ap
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::TautologicalConstraint));
    }

    #[test]
    fn source_analysis_rejects_unstratified_and_unsafe() {
        let err = analyze_source("win(X) :- move(X,Y), not win(Y).").unwrap_err();
        assert_eq!(err.kind, AnalyzeErrorKind::Source);
        assert_eq!(err.primary().unwrap().code, Code::Unstratified);

        let err =
            analyze_source("constraint c: forall X: p(X) -> q(X) | forall Y: r(Y).").unwrap_err();
        assert_eq!(err.kind, AnalyzeErrorKind::Source);
        assert_eq!(err.primary().unwrap().code, Code::UnsafeItem);
    }

    #[test]
    fn sat_classification_is_lazy() {
        let ap = Analyzer::new(RuleSet::empty(), vec![ic("some", "exists X: p(X)")]).analyze();
        assert!(ap.sat_if_classified().is_none());
        let _ = ap.set_class();
        assert!(ap.sat_if_classified().is_some());
    }
}
