//! UA03xx: schema-time satisfiability classification (§4 of the paper).
//!
//! The paper's satisfiability search answers "is there *any* database
//! state satisfying the constraints?" — a property of the schema alone,
//! independent of the current facts. The analyzer runs the bounded
//! search ([`SatOptions::classification`]) once per constraint and once
//! for the whole set, and folds the outcomes into four classes:
//!
//! * **Unsatisfiable** — no state at all satisfies it; the schema (or
//!   the constraint) is unusable no matter what the facts say. This is
//!   the class integration layers *refuse*, and it is deliberately
//!   distinct from "currently violated": a violated-but-satisfiable
//!   constraint is repairable, an unsatisfiable one is not.
//! * **Tautological** — every state satisfies it (its negation is
//!   unsatisfiable); it never rejects anything and only costs time.
//! * **Contingent** — some states satisfy it, some do not: a useful
//!   constraint.
//! * **Unknown** — the bounded search gave up (both properties are only
//!   semi-decidable; §4 calls such cases unavoidable).

use crate::diag::{Code, Diagnostic};
use std::fmt;
use uniform_datalog::RuleSet;
use uniform_logic::{normalize, rq_to_formula, Constraint, Formula};
use uniform_satisfiability::{SatChecker, SatOptions, SatOutcome, SatReport, SatStats};

/// Schema-time classification of a constraint (or a constraint set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SatClass {
    /// No database state satisfies it.
    Unsatisfiable,
    /// Every database state satisfies it.
    Tautological,
    /// Satisfied by some states, violated by others.
    Contingent,
    /// The bounded search exhausted its budget before deciding.
    Unknown,
}

impl fmt::Display for SatClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SatClass::Unsatisfiable => "unsatisfiable",
            SatClass::Tautological => "tautological",
            SatClass::Contingent => "contingent",
            SatClass::Unknown => "unknown",
        })
    }
}

/// The result of the lazy UA03xx pass: per-constraint classes (parallel
/// to the constraint list), the whole-set class, and the diagnostics
/// they imply.
#[derive(Clone, Debug)]
pub struct SatAnalysis {
    /// Class of each constraint on its own, in registration order.
    /// Empty when the analysis ran set-only (see
    /// [`crate::AnalyzeOptions::classify_each`]).
    pub per_constraint: Vec<SatClass>,
    /// Class of the whole constraint set. An empty set is
    /// [`SatClass::Tautological`] (vacuously satisfied everywhere).
    pub set_class: SatClass,
    /// The raw report of the whole-set search, when one ran (it is
    /// skipped when a single constraint already proved the set
    /// unsatisfiable, and when the set is empty).
    pub set_report: Option<SatReport>,
    /// UA0301–UA0304 findings, set-level last.
    pub diagnostics: Vec<Diagnostic>,
    /// Summed search statistics over every check that ran.
    pub stats: SatStats,
}

fn add_stats(into: &mut SatStats, s: &SatStats) {
    into.attempts += s.attempts;
    into.enforcement_steps += s.enforcement_steps;
    into.assertions += s.assertions;
    into.undo_events += s.undo_events;
    into.max_level = into.max_level.max(s.max_level);
    into.fresh_constants = into.fresh_constants.max(s.fresh_constants);
    into.incremental_checks += s.incremental_checks;
    into.full_checks += s.full_checks;
}

/// The negation of `c` as a constraint, when it normalizes to a closed
/// RQ formula (it always should — `c.rq` is closed — but normalization
/// of the negation can still exceed the RQ fragment's shape limits, in
/// which case the tautology probe is skipped).
fn negated(c: &Constraint) -> Option<Constraint> {
    let f = Formula::Not(Box::new(rq_to_formula(&c.rq)));
    let rq = normalize(&f).ok()?;
    Some(Constraint::new(format!("~{}", c.name), rq))
}

/// Classify every constraint and the whole set. `probe_tautologies`
/// doubles the per-constraint checks (one search for the constraint, one
/// for its negation), so callers on a hot path can turn it off.
pub(crate) fn classify(
    rules: &RuleSet,
    constraints: &[Constraint],
    options: &SatOptions,
    probe_tautologies: bool,
    classify_each: bool,
) -> SatAnalysis {
    let mut stats = SatStats::default();
    let mut diagnostics = Vec::new();
    let mut per_constraint = Vec::with_capacity(constraints.len());

    let check = |cs: Vec<Constraint>, stats: &mut SatStats| -> SatOutcome {
        let report = SatChecker::new(rules.clone(), cs)
            .with_options(options.clone())
            .check();
        add_stats(stats, &report.stats);
        report.outcome
    };

    for c in constraints.iter().filter(|_| classify_each) {
        let class = match check(vec![c.clone()], &mut stats) {
            SatOutcome::Unsatisfiable => SatClass::Unsatisfiable,
            SatOutcome::Unknown { .. } => SatClass::Unknown,
            SatOutcome::Satisfiable { .. } => {
                let tautological = probe_tautologies
                    && negated(c).is_some_and(|neg| {
                        matches!(check(vec![neg], &mut stats), SatOutcome::Unsatisfiable)
                    });
                if tautological {
                    SatClass::Tautological
                } else {
                    SatClass::Contingent
                }
            }
        };
        match class {
            SatClass::Unsatisfiable => diagnostics.push(
                Diagnostic::new(
                    Code::UnsatisfiableConstraint,
                    "no database state satisfies this constraint on its own".to_string(),
                )
                .with_item(c.name.clone()),
            ),
            SatClass::Tautological => diagnostics.push(
                Diagnostic::new(
                    Code::TautologicalConstraint,
                    "holds in every database state; it never rejects an update".to_string(),
                )
                .with_item(c.name.clone()),
            ),
            SatClass::Unknown => diagnostics.push(
                Diagnostic::new(
                    Code::SatisfiabilityUnknown,
                    "bounded satisfiability search exhausted its budget before classifying"
                        .to_string(),
                )
                .with_item(c.name.clone()),
            ),
            SatClass::Contingent => {}
        }
        per_constraint.push(class);
    }

    // Whole set. A constraint that is unsatisfiable alone makes the set
    // unsatisfiable without another search; otherwise the set needs its
    // own check — jointly-unsatisfiable contingent constraints are the
    // interesting case.
    let mut set_report = None;
    let set_class = if constraints.is_empty() {
        SatClass::Tautological
    } else if per_constraint.contains(&SatClass::Unsatisfiable) {
        SatClass::Unsatisfiable
    } else {
        let report = SatChecker::new(rules.clone(), constraints.to_vec())
            .with_options(options.clone())
            .check();
        add_stats(&mut stats, &report.stats);
        let class = match report.outcome {
            SatOutcome::Unsatisfiable => SatClass::Unsatisfiable,
            SatOutcome::Unknown { .. } => SatClass::Unknown,
            SatOutcome::Satisfiable { .. } => SatClass::Contingent,
        };
        set_report = Some(report);
        class
    };
    if set_class == SatClass::Unsatisfiable {
        diagnostics.push(Diagnostic::unsatisfiable_set(constraints.len()));
    }

    SatAnalysis {
        per_constraint,
        set_class,
        set_report,
        diagnostics,
        stats,
    }
}
