//! The analyzer entry point and its product, [`AnalyzedProgram`].
//!
//! [`Analyzer`] is a builder over the three components of a schema —
//! rules, constraints, declared relations — plus optional source spans
//! and observability. [`Analyzer::analyze`] runs the cheap passes
//! eagerly (UA01xx/UA02xx lints, dependency artifacts, per-constraint
//! closures) and defers the satisfiability classification (UA03xx) to
//! the first call of [`AnalyzedProgram::sat`]: classifying runs bounded
//! model searches and integration layers only need it on schema
//! mutation, not on every cache hit.

use crate::diag::{AnalyzeError, AnalyzeErrorKind, Code, Diagnostic};
use crate::lint::{self, LintInput};
use crate::sat::{self, SatAnalysis, SatClass};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};
use uniform_datalog::{Database, DepGraph, PatternTemplates, RuleSet, Snapshot};
use uniform_logic::{normalize, parse_program, Constraint, LogicError, ProgramSource, Span, Sym};
use uniform_obs::Obs;
use uniform_satisfiability::SatOptions;

/// Analyzer knobs.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Budget for each satisfiability search (default:
    /// [`SatOptions::classification`] — tight, so prepare-time analysis
    /// cannot stall for seconds).
    pub sat: SatOptions,
    /// Probe each satisfiable constraint's negation to detect
    /// tautologies (UA0303). Doubles the per-constraint searches;
    /// default on.
    pub probe_tautologies: bool,
    /// Classify each constraint on its own (UA0302/UA0303/UA0304) in
    /// addition to the whole set. Off, only the set-level search runs —
    /// the single-search gate mode `try_add_constraint` uses. Default
    /// on.
    pub classify_each: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            sat: SatOptions::classification(),
            probe_tautologies: true,
            classify_each: true,
        }
    }
}

impl AnalyzeOptions {
    /// The schema-gate preset: one satisfiability search over the whole
    /// candidate set with the given budget, no per-constraint
    /// classification and no tautology probes — the same cost as a bare
    /// `SatChecker` run.
    pub fn gate(sat: SatOptions) -> AnalyzeOptions {
        AnalyzeOptions {
            sat,
            probe_tautologies: false,
            classify_each: false,
        }
    }
}

/// Builder for a static analysis run.
pub struct Analyzer {
    rules: RuleSet,
    constraints: Vec<Constraint>,
    declared: Vec<(Sym, usize)>,
    rule_spans: Vec<Span>,
    constraint_spans: Vec<Span>,
    options: AnalyzeOptions,
    obs: Arc<Obs>,
}

impl Analyzer {
    pub fn new(rules: RuleSet, constraints: Vec<Constraint>) -> Analyzer {
        Analyzer {
            rules,
            constraints,
            declared: Vec::new(),
            rule_spans: Vec::new(),
            constraint_spans: Vec::new(),
            options: AnalyzeOptions::default(),
            obs: Arc::new(Obs::null()),
        }
    }

    /// Analyze a database's registered program: its rules and
    /// constraints, with the stored relations as declared EDB.
    pub fn of_database(db: &Database) -> Analyzer {
        let declared = db
            .facts()
            .predicates()
            .filter_map(|p| db.facts().relation(p).map(|r| (p, r.arity())))
            .collect::<Vec<_>>();
        Analyzer::new(db.rules().clone(), db.constraints().to_vec()).with_declared(declared)
    }

    /// Analyze a snapshot's registered program (same shape as
    /// [`Analyzer::of_database`]).
    pub fn of_snapshot(snap: &Snapshot) -> Analyzer {
        let declared = snap
            .facts()
            .predicates()
            .filter_map(|p| snap.facts().relation(p).map(|r| (p, r.arity())))
            .collect::<Vec<_>>();
        Analyzer::new(snap.rules().clone(), snap.constraints().to_vec()).with_declared(declared)
    }

    /// Declare EDB relations `(predicate, arity)`. Sorted internally;
    /// enables the lints that need to know the EDB universe (UA0201) and
    /// sharpens UA0101.
    pub fn with_declared(mut self, mut declared: Vec<(Sym, usize)>) -> Analyzer {
        declared.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        declared.dedup();
        self.declared = declared;
        self
    }

    /// Attach source spans (parallel to the rule / constraint lists).
    pub fn with_spans(mut self, rule_spans: Vec<Span>, constraint_spans: Vec<Span>) -> Analyzer {
        self.rule_spans = rule_spans;
        self.constraint_spans = constraint_spans;
        self
    }

    pub fn with_options(mut self, options: AnalyzeOptions) -> Analyzer {
        self.options = options;
        self
    }

    pub fn with_obs(mut self, obs: Arc<Obs>) -> Analyzer {
        self.obs = obs;
        self
    }

    /// Run the eager passes and package the artifacts. Never fails: a
    /// constructed `RuleSet` is already stratified and range-restricted,
    /// so everything else is a diagnostic, not an error.
    pub fn analyze(self) -> AnalyzedProgram {
        let obs = self.obs.clone();
        let _span = obs.span("analyze.run");
        obs.counter("analyze.runs").incr();

        let input = LintInput {
            rules: &self.rules,
            constraints: &self.constraints,
            declared: &self.declared,
            rule_spans: &self.rule_spans,
            constraint_spans: &self.constraint_spans,
        };
        let mut diagnostics = lint::run(&input);
        let schema_preds = lint::schema_predicates(&input);

        // Per-constraint closures: exactly the static portion of
        // `RepairEngine::report_closure` — every predicate reachable
        // through rule bodies from any literal of the constraint, in
        // `Sym` order.
        let graph = self.rules.graph();
        let mut closures = Vec::with_capacity(self.constraints.len());
        let mut union: BTreeSet<Sym> = BTreeSet::new();
        for c in &self.constraints {
            let mut one: BTreeSet<Sym> = BTreeSet::new();
            for occ in c.rq.literals() {
                one.extend(graph.reachable(occ.literal.atom.pred));
            }
            union.extend(one.iter().copied());
            closures.push(one.into_iter().collect::<Vec<Sym>>());
        }
        let closure_union: Vec<Sym> = union.into_iter().collect();

        if let Some(d) =
            lint::closure_covers_schema(&schema_preds, closure_union.len(), self.constraints.len())
        {
            diagnostics.push(d);
        }

        obs.counter("analyze.diagnostics")
            .add(diagnostics.len() as u64);

        AnalyzedProgram {
            rules: self.rules,
            constraints: self.constraints,
            declared: self.declared,
            lint: diagnostics,
            schema_preds,
            closures,
            closure_union,
            options: self.options,
            obs: self.obs,
            sat: OnceLock::new(),
        }
    }
}

/// The product of a static analysis run: lint findings plus the
/// precomputed artifacts the runtime layers would otherwise re-derive
/// per state — the dependency graph, per-constraint predicate closures
/// (what `RepairEngine::report_closure` computes for cache
/// invalidation), and the shared read-pattern templates.
pub struct AnalyzedProgram {
    rules: RuleSet,
    constraints: Vec<Constraint>,
    declared: Vec<(Sym, usize)>,
    lint: Vec<Diagnostic>,
    /// Every predicate of the schema, sorted by name.
    schema_preds: Vec<Sym>,
    /// Per-constraint predicate closures, parallel to `constraints`,
    /// each in `Sym` order (matching `report_closure`).
    closures: Vec<Vec<Sym>>,
    /// Union of `closures`, in `Sym` order.
    closure_union: Vec<Sym>,
    options: AnalyzeOptions,
    obs: Arc<Obs>,
    sat: OnceLock<SatAnalysis>,
}

impl std::fmt::Debug for AnalyzedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalyzedProgram")
            .field("rules", &self.rules.len())
            .field("constraints", &self.constraints.len())
            .field("lint", &self.lint)
            .field("sat", &self.sat.get())
            .finish_non_exhaustive()
    }
}

impl AnalyzedProgram {
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Declared EDB relations, name-sorted.
    pub fn declared(&self) -> &[(Sym, usize)] {
        &self.declared
    }

    /// The predicate dependency graph (shared with the rule set).
    pub fn graph(&self) -> &DepGraph {
        self.rules.graph()
    }

    /// The precompiled read-pattern templates (shared with the rule
    /// set): specialize with a check's constants to get exactly the
    /// patterns `CheckReport::read_patterns` reports.
    pub fn templates(&self) -> &Arc<PatternTemplates> {
        self.rules.templates()
    }

    /// Eager findings (UA01xx/UA02xx), deterministic order.
    pub fn lint_diagnostics(&self) -> &[Diagnostic] {
        &self.lint
    }

    /// Every predicate of the schema, sorted by name.
    pub fn schema_predicates(&self) -> &[Sym] {
        &self.schema_preds
    }

    /// The closure of the `idx`-th constraint: every predicate whose
    /// facts can influence its truth, in `Sym` order.
    pub fn closure_of(&self, idx: usize) -> &[Sym] {
        &self.closures[idx]
    }

    /// The closure of the named constraint, if it exists.
    pub fn constraint_closure(&self, name: &str) -> Option<&[Sym]> {
        self.constraints
            .iter()
            .position(|c| c.name == name)
            .map(|i| self.closures[i].as_slice())
    }

    /// Union of all constraint closures, in `Sym` order: the static part
    /// of `RepairEngine::report_closure`, and the set a commit must
    /// intersect to invalidate cached certain-answer verdicts.
    pub fn closure_union(&self) -> &[Sym] {
        &self.closure_union
    }

    /// The UA03xx classification, computed on first call and cached.
    pub fn sat(&self) -> &SatAnalysis {
        self.sat.get_or_init(|| {
            let _span = self.obs.span("analyze.classify");
            let analysis = sat::classify(
                &self.rules,
                &self.constraints,
                &self.options.sat,
                self.options.probe_tautologies,
                self.options.classify_each,
            );
            self.obs
                .counter("analyze.sat.classifications")
                .add(1 + analysis.per_constraint.len() as u64);
            if analysis.set_class == SatClass::Unsatisfiable {
                self.obs.counter("analyze.sat.unsat").incr();
            }
            self.obs
                .counter("analyze.diagnostics")
                .add(analysis.diagnostics.len() as u64);
            analysis
        })
    }

    /// The classification if it already ran (never forces it).
    pub fn sat_if_classified(&self) -> Option<&SatAnalysis> {
        self.sat.get()
    }

    /// Class of the whole constraint set (forces classification).
    pub fn set_class(&self) -> SatClass {
        self.sat().set_class
    }

    /// All findings: lints plus the UA03xx classification (forced).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = self.lint.clone();
        out.extend(self.sat().diagnostics.iter().cloned());
        out
    }

    /// The static refusal verdict: `Some` when the program carries at
    /// least one error-severity diagnostic (an unsatisfiable constraint
    /// set being the canonical case — forced here). Integration layers
    /// call this before registering a schema.
    pub fn refusal(&self) -> Option<AnalyzeError> {
        let errors: Vec<Diagnostic> = self
            .diagnostics()
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        if errors.is_empty() {
            return None;
        }
        self.obs.counter("analyze.refusals").incr();
        Some(AnalyzeError::new(AnalyzeErrorKind::Rejected, errors))
    }
}

/// Analyze a textual program (facts, rules, constraints) without
/// building a database. Findings carry source spans. `Err` means the
/// program cannot even be constructed — parse failure, an unsafe rule
/// (UA0103), unstratified recursion (UA0104), or a constraint outside
/// the closed RQ fragment (UA0103) — with the diagnostics that say why.
pub fn analyze_source(src: &str) -> Result<AnalyzedProgram, AnalyzeError> {
    let prog: ProgramSource = parse_program(src).map_err(|e| {
        AnalyzeError::new(
            AnalyzeErrorKind::Source,
            vec![
                Diagnostic::new(Code::UnsafeItem, e.message.clone()).with_span(Some(Span {
                    line: e.line,
                    col: e.col,
                })),
            ],
        )
    })?;

    let rules = RuleSet::new(prog.rules.clone()).map_err(|e| {
        // Anchor the cycle report at the first rule whose head is the
        // predicate the stratification error names.
        let span = prog
            .rules
            .iter()
            .position(|r| r.head.pred == e.head)
            .and_then(|i| prog.rule_spans.get(i).copied())
            .or_else(|| prog.rule_spans.first().copied());
        AnalyzeError::new(
            AnalyzeErrorKind::Source,
            vec![Diagnostic::new(Code::Unstratified, e.to_string()).with_span(span)],
        )
    })?;

    let mut constraints = Vec::with_capacity(prog.constraints.len());
    let mut bad = Vec::new();
    for (i, (name, f)) in prog.constraints.iter().enumerate() {
        match normalize(f) {
            Ok(rq) => {
                let name = name.clone().unwrap_or_else(|| format!("ic{}", i + 1));
                constraints.push(Constraint::new(name, rq));
            }
            Err(e) => bad.push(
                Diagnostic::new(Code::UnsafeItem, LogicError::Normalize(e).to_string())
                    .with_span(prog.constraint_span(i)),
            ),
        }
    }
    if !bad.is_empty() {
        return Err(AnalyzeError::new(AnalyzeErrorKind::Source, bad));
    }

    let mut declared: Vec<(Sym, usize)> =
        prog.facts.iter().map(|f| (f.pred, f.args.len())).collect();
    declared.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()).then(a.1.cmp(&b.1)));
    declared.dedup();

    Ok(Analyzer::new(rules, constraints)
        .with_declared(declared)
        .with_spans(prog.rule_spans, prog.constraint_spans)
        .analyze())
}
