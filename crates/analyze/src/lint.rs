//! Structural (UA01xx) and flow (UA02xx) lints.
//!
//! All lints here are cheap, purely syntactic/graph-based passes over the
//! registered program — no fact base is consulted and no search runs.
//! Diagnostics are emitted in a deterministic order: rules in
//! registration order, then constraints in registration order, then
//! schema-level findings; within one item, findings are ordered by code.

use crate::diag::{Code, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};
use uniform_datalog::RuleSet;
use uniform_logic::{Constraint, Span, Sym, Term};

/// Everything the lint passes look at. Spans are optional parallel
/// vectors (empty when the program was built programmatically).
pub(crate) struct LintInput<'a> {
    pub rules: &'a RuleSet,
    pub constraints: &'a [Constraint],
    /// Declared EDB relations `(predicate, arity)`. Empty means the EDB
    /// universe is unknown, which disables the lints that need it
    /// (UA0201).
    pub declared: &'a [(Sym, usize)],
    pub rule_spans: &'a [Span],
    pub constraint_spans: &'a [Span],
}

impl LintInput<'_> {
    fn rule_span(&self, i: usize) -> Option<Span> {
        self.rule_spans.get(i).copied()
    }

    fn constraint_span(&self, i: usize) -> Option<Span> {
        self.constraint_spans.get(i).copied()
    }
}

/// Run every UA01xx/UA02xx lint and return the findings.
pub(crate) fn run(input: &LintInput<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    arity_mismatches(input, &mut out);
    singleton_variables(input, &mut out);
    dead_rules(input, &mut out);
    unreachable_from_constraints(input, &mut out);
    empty_by_construction(input, &mut out);
    out
}

/// Name-sorted predicate set of the whole program: rule heads and
/// bodies, constraint literals, declared EDB relations.
pub(crate) fn schema_predicates(input: &LintInput<'_>) -> Vec<Sym> {
    let mut set: BTreeSet<&str> = BTreeSet::new();
    let mut syms: BTreeMap<&str, Sym> = BTreeMap::new();
    let mut add = |p: Sym| {
        set.insert(p.as_str());
        syms.insert(p.as_str(), p);
    };
    for rule in input.rules.rules() {
        add(rule.head.pred);
        for lit in &rule.body {
            add(lit.atom.pred);
        }
    }
    for c in input.constraints {
        for occ in c.rq.literals() {
            add(occ.literal.atom.pred);
        }
    }
    for &(p, _) in input.declared {
        add(p);
    }
    set.iter().map(|s| syms[s]).collect()
}

/// UA0101: one predicate, two arities. The first use (declared
/// relations, then rules, then constraints) wins; later conflicting uses
/// are reported.
fn arity_mismatches(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    struct FirstUse {
        arity: usize,
        at: String,
    }
    let mut first: BTreeMap<&str, FirstUse> = BTreeMap::new();
    let mut check = |pred: Sym,
                     arity: usize,
                     at: &dyn Fn() -> String,
                     span: Option<Span>,
                     item: Option<String>,
                     out: &mut Vec<Diagnostic>| {
        match first.get(pred.as_str()) {
            None => {
                first.insert(pred.as_str(), FirstUse { arity, at: at() });
            }
            Some(f) if f.arity != arity => {
                let mut d = Diagnostic::new(
                    Code::ArityMismatch,
                    format!(
                        "predicate {pred} used with arity {arity}, but {} uses arity {}",
                        f.at, f.arity
                    ),
                )
                .with_span(span);
                if let Some(item) = item {
                    d = d.with_item(item);
                }
                out.push(d);
            }
            Some(_) => {}
        }
    };

    for &(pred, arity) in input.declared {
        check(
            pred,
            arity,
            &|| format!("the declared relation {pred}/{arity}"),
            None,
            None,
            out,
        );
    }
    for (i, rule) in input.rules.rules().iter().enumerate() {
        let span = input.rule_span(i);
        let item = format!("{rule}");
        let at = || format!("rule {rule}");
        check(
            rule.head.pred,
            rule.head.args.len(),
            &at,
            span,
            Some(item.clone()),
            out,
        );
        for lit in &rule.body {
            check(
                lit.atom.pred,
                lit.atom.args.len(),
                &at,
                span,
                Some(item.clone()),
                out,
            );
        }
    }
    for (i, c) in input.constraints.iter().enumerate() {
        let span = input.constraint_span(i);
        let at = || format!("constraint {}", c.name);
        for occ in c.rq.literals() {
            check(
                occ.literal.atom.pred,
                occ.literal.atom.args.len(),
                &at,
                span,
                Some(c.name.clone()),
                out,
            );
        }
    }
}

/// UA0102: a variable occurring exactly once in a rule. Almost always a
/// typo (`parenl(X,Y)`) or an unused binding; `_`-prefixed names are the
/// conventional opt-out and are skipped.
fn singleton_variables(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    for (i, rule) in input.rules.rules().iter().enumerate() {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        let mut bump = |t: &Term| {
            if let Some(v) = t.as_var() {
                *counts.entry(v.as_str()).or_insert(0) += 1;
            }
        };
        for t in &rule.head.args {
            bump(t);
        }
        for lit in &rule.body {
            for t in &lit.atom.args {
                bump(t);
            }
        }
        let singles: Vec<&str> = counts
            .iter()
            .filter(|(name, &n)| n == 1 && !name.starts_with('_'))
            .map(|(&name, _)| name)
            .collect();
        if !singles.is_empty() {
            out.push(
                Diagnostic::new(
                    Code::SingletonVariable,
                    format!(
                        "variable{} {} occur{} only once (prefix with _ if intentional)",
                        if singles.len() == 1 { "" } else { "s" },
                        singles.join(", "),
                        if singles.len() == 1 { "s" } else { "" },
                    ),
                )
                .with_span(input.rule_span(i))
                .with_item(format!("{rule}")),
            );
        }
    }
}

/// UA0201: a rule whose body consults a predicate that is neither any
/// rule's head nor a declared relation — with the EDB universe known,
/// such a rule can never fire. Needs `declared` to be meaningful, so it
/// is skipped when no relations were declared.
fn dead_rules(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    if input.declared.is_empty() {
        return;
    }
    let mut defined: BTreeSet<&str> = input.declared.iter().map(|&(p, _)| p.as_str()).collect();
    for rule in input.rules.rules() {
        defined.insert(rule.head.pred.as_str());
    }
    for (i, rule) in input.rules.rules().iter().enumerate() {
        let mut missing: Vec<&str> = rule
            .body
            .iter()
            .filter(|l| l.positive)
            .map(|l| l.atom.pred.as_str())
            .filter(|p| !defined.contains(p))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        if !missing.is_empty() {
            out.push(
                Diagnostic::new(
                    Code::DeadRule,
                    format!(
                        "body consults {}, which no rule derives and no relation declares; \
                         the rule can never fire",
                        missing.join(", "),
                    ),
                )
                .with_span(input.rule_span(i))
                .with_item(format!("{rule}")),
            );
        }
    }
}

/// UA0202: IDB predicates the constraints never reach. Integrity
/// checking will never evaluate their rules (ad-hoc queries still may),
/// reported per predicate, name-sorted. Skipped when there are no
/// constraints — then nothing is reachable and the lint is noise.
fn unreachable_from_constraints(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    if input.constraints.is_empty() {
        return;
    }
    let graph = input.rules.graph();
    let mut reached: BTreeSet<&str> = BTreeSet::new();
    for c in input.constraints {
        for occ in c.rq.literals() {
            for p in graph.reachable(occ.literal.atom.pred) {
                reached.insert(p.as_str());
            }
        }
    }
    let mut unreachable: Vec<&str> = graph
        .idb_predicates()
        .iter()
        .map(|p| p.as_str())
        .filter(|p| !reached.contains(p))
        .collect();
    unreachable.sort_unstable();
    for pred in unreachable {
        out.push(Diagnostic::new(
            Code::UnreachableFromConstraints,
            format!(
                "derived predicate {pred} is not reachable from any constraint; \
                 integrity checking never consults its rules"
            ),
        ));
    }
}

/// UA0203: a rule body containing a literal and its exact complement is
/// unsatisfiable — the rule contributes nothing, ever.
fn empty_by_construction(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    for (i, rule) in input.rules.rules().iter().enumerate() {
        let contradiction = rule
            .body
            .iter()
            .any(|l| !l.positive && rule.body.iter().any(|m| m.positive && m.atom == l.atom));
        if contradiction {
            out.push(
                Diagnostic::new(
                    Code::EmptyByConstruction,
                    "body contains a literal and its complement; the rule can never fire"
                        .to_string(),
                )
                .with_span(input.rule_span(i))
                .with_item(format!("{rule}")),
            );
        }
    }
}

/// UA0204 is emitted by the caller once the closure union is known (it
/// needs the per-constraint closures that [`crate::AnalyzedProgram`]
/// computes anyway).
pub(crate) fn closure_covers_schema(
    schema_preds: &[Sym],
    closure_union_len: usize,
    n_constraints: usize,
) -> Option<Diagnostic> {
    if n_constraints == 0 || schema_preds.len() < 2 || closure_union_len < schema_preds.len() {
        return None;
    }
    Some(Diagnostic::new(
        Code::ClosureCoversSchema,
        format!(
            "the constraint closure covers all {} schema predicates; every commit \
             invalidates cached certain-answer verdicts and repair reports \
             (carry-forward never applies)",
            schema_preds.len()
        ),
    ))
}
