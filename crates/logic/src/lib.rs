//! # uniform-logic
//!
//! First-order logic kernel for the *uniform approach to constraint
//! satisfaction and constraint satisfiability in deductive databases*
//! (Bry, Decker & Manthey, EDBT 1988).
//!
//! This crate provides the language layer the whole system is built on:
//!
//! * interned [`Sym`]bols, function-free [`Term`]s, [`Atom`]s,
//!   [`Literal`]s and ground [`Fact`]s;
//! * [`Rule`]s with range-restriction validation and safe body ordering;
//! * general first-order [`Formula`]s with a Prolog-flavoured
//!   [`parser`] and the normalized restricted-quantification form
//!   [`Rq`] used for integrity constraints (§2 of the paper);
//! * [substitutions](Subst), [unification](unify), matching and
//!   [subsumption](subsume);
//! * a [naive semantics oracle](semantics) for cross-checking evaluators.
//!
//! Higher layers: `uniform-datalog` (storage and query evaluation),
//! `uniform-integrity` (constraint *satisfaction* checking),
//! `uniform-satisfiability` (constraint *satisfiability* checking) and
//! `uniform-core` (the user-facing façade).

pub mod error;
pub mod formula;
pub mod normalize;
pub mod parser;
pub mod rule;
pub mod semantics;
pub mod subst;
pub mod subsume;
pub mod symbol;
pub mod term;
pub mod unify;

pub use error::{LogicError, NormalizeError, ParseError, RuleError};
pub use formula::{Constraint, Formula, Rq, RqLiteral, RqPath, RqStep};
pub use normalize::{normalize, normalize_open, rq_to_formula};
pub use parser::{
    parse_fact, parse_formula, parse_literal, parse_program, parse_query, parse_rule,
    ProgramSource, Span,
};
pub use rule::Rule;
pub use subst::Subst;
pub use subsume::{atom_subsumes, literal_subsumes, MinimalLiteralSet};
pub use symbol::Sym;
pub use term::{Atom, Fact, Literal, Term};
pub use unify::{
    match_atom, rename_atom, rename_literal, unify_atoms, unify_atoms_under, unify_literals,
    unify_terms,
};
