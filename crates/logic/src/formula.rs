//! Formula ASTs.
//!
//! Two levels are distinguished:
//!
//! * [`Formula`] — the general first-order surface syntax produced by the
//!   parser: arbitrary connectives, unrestricted quantifiers.
//! * [`Rq`] — the normalized *restricted quantification* form the paper
//!   assumes for integrity constraints (§2): rectified, miniscoped,
//!   negation normal form, ∨ distributed over ∧, and every quantifier of
//!   one of the shapes
//!
//!   ```text
//!   ∃X1..Xn [ A1 ∧ .. ∧ Am ∧ Q ]
//!   ∀X1..Xn [ ¬A1 ∨ .. ∨ ¬Am ∨ Q ]
//!   ```
//!
//!   where every `Xi` occurs in at least one `Aj` (the *range*). The range
//!   makes constraints domain independent, which is what allows integrity
//!   checking to evaluate only constraints mentioning updated relations.
//!
//! The conversion lives in [`crate::normalize()`].

use crate::subst::Subst;
use crate::symbol::Sym;
use crate::term::{Atom, Literal};
use std::collections::BTreeSet;
use std::fmt;

/// General first-order formula over function-free atoms.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    True,
    False,
    Atom(Atom),
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Implies(Box<Formula>, Box<Formula>),
    Iff(Box<Formula>, Box<Formula>),
    Forall(Vec<Sym>, Box<Formula>),
    Exists(Vec<Sym>, Box<Formula>),
}

impl Formula {
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    pub fn forall(vars: Vec<Sym>, f: Formula) -> Formula {
        Formula::Forall(vars, Box::new(f))
    }

    pub fn exists(vars: Vec<Sym>, f: Formula) -> Formula {
        Formula::Exists(vars, Box::new(f))
    }

    /// Free variables, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Sym> {
        fn go(f: &Formula, bound: &mut Vec<Sym>, out: &mut Vec<Sym>, seen: &mut BTreeSet<Sym>) {
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(a) => {
                    for v in a.vars() {
                        if !bound.contains(&v) && seen.insert(v) {
                            out.push(v);
                        }
                    }
                }
                Formula::Not(g) => go(g, bound, out, seen),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        go(g, bound, out, seen);
                    }
                }
                Formula::Implies(a, b) | Formula::Iff(a, b) => {
                    go(a, bound, out, seen);
                    go(b, bound, out, seen);
                }
                Formula::Forall(vs, g) | Formula::Exists(vs, g) => {
                    let n = bound.len();
                    bound.extend(vs.iter().copied());
                    go(g, bound, out, seen);
                    bound.truncate(n);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out, &mut BTreeSet::new());
        out
    }

    /// True if the formula has no free variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(g) => write!(f, "~({g:?})"),
            Formula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Formula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a:?} -> {b:?})"),
            Formula::Iff(a, b) => write!(f, "({a:?} <-> {b:?})"),
            // Quantifiers print parenthesized: their scope extends
            // maximally right in the grammar, so an unparenthesized
            // rendering inside a larger formula would re-parse with a
            // wider scope.
            Formula::Forall(vs, g) => {
                write!(f, "(forall ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ": {g:?})")
            }
            Formula::Exists(vs, g) => {
                write!(f, "(exists ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ": {g:?})")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Normalized restricted-quantification formula (negation normal form;
/// negation only on literals; quantifiers carry their range).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Rq {
    True,
    False,
    Lit(Literal),
    And(Vec<Rq>),
    Or(Vec<Rq>),
    /// `∀ vars [ ¬range1 ∨ … ∨ ¬rangem ∨ body ]`
    Forall {
        vars: Vec<Sym>,
        range: Vec<Atom>,
        body: Box<Rq>,
    },
    /// `∃ vars [ range1 ∧ … ∧ rangem ∧ body ]`
    Exists {
        vars: Vec<Sym>,
        range: Vec<Atom>,
        body: Box<Rq>,
    },
}

/// One step of a path into an [`Rq`] tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RqStep {
    /// i-th child of an `And`/`Or`.
    Child(usize),
    /// i-th range atom of a quantifier.
    Range(usize),
    /// Body of a quantifier.
    Body,
}

/// Path from the root of an [`Rq`] to a literal occurrence.
pub type RqPath = Vec<RqStep>;

/// A literal occurrence in an [`Rq`]: its path and the literal *as it
/// occurs* (range atoms of a `∀` occur negatively, of an `∃` positively).
#[derive(Clone, Debug)]
pub struct RqLiteral {
    pub path: RqPath,
    pub literal: Literal,
}

impl Rq {
    /// Smart conjunction: flattens, drops `True`, collapses on `False`.
    pub fn and(parts: Vec<Rq>) -> Rq {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Rq::True => {}
                Rq::False => return Rq::False,
                Rq::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Rq::True,
            1 => out.pop().unwrap(),
            _ => Rq::And(out),
        }
    }

    /// Smart disjunction: flattens, drops `False`, collapses on `True`.
    pub fn or(parts: Vec<Rq>) -> Rq {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Rq::False => {}
                Rq::True => return Rq::True,
                Rq::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Rq::False,
            1 => out.pop().unwrap(),
            _ => Rq::Or(out),
        }
    }

    /// All literal occurrences, with paths. Range atoms are reported with
    /// the polarity they carry in the logical reading of the node.
    pub fn literals(&self) -> Vec<RqLiteral> {
        let mut out = Vec::new();
        self.collect_literals(&mut Vec::new(), &mut out);
        out
    }

    fn collect_literals(&self, path: &mut RqPath, out: &mut Vec<RqLiteral>) {
        match self {
            Rq::True | Rq::False => {}
            Rq::Lit(l) => out.push(RqLiteral {
                path: path.clone(),
                literal: l.clone(),
            }),
            Rq::And(gs) | Rq::Or(gs) => {
                for (i, g) in gs.iter().enumerate() {
                    path.push(RqStep::Child(i));
                    g.collect_literals(path, out);
                    path.pop();
                }
            }
            Rq::Forall { range, body, .. } => {
                for (i, a) in range.iter().enumerate() {
                    path.push(RqStep::Range(i));
                    out.push(RqLiteral {
                        path: path.clone(),
                        literal: a.clone().neg(),
                    });
                    path.pop();
                }
                path.push(RqStep::Body);
                body.collect_literals(path, out);
                path.pop();
            }
            Rq::Exists { range, body, .. } => {
                for (i, a) in range.iter().enumerate() {
                    path.push(RqStep::Range(i));
                    out.push(RqLiteral {
                        path: path.clone(),
                        literal: a.clone().pos(),
                    });
                    path.pop();
                }
                path.push(RqStep::Body);
                body.collect_literals(path, out);
                path.pop();
            }
        }
    }

    /// Free variables in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Sym> {
        fn go(f: &Rq, bound: &mut Vec<Sym>, out: &mut Vec<Sym>, seen: &mut BTreeSet<Sym>) {
            match f {
                Rq::True | Rq::False => {}
                Rq::Lit(l) => {
                    for v in l.vars() {
                        if !bound.contains(&v) && seen.insert(v) {
                            out.push(v);
                        }
                    }
                }
                Rq::And(gs) | Rq::Or(gs) => {
                    for g in gs {
                        go(g, bound, out, seen);
                    }
                }
                Rq::Forall { vars, range, body } | Rq::Exists { vars, range, body } => {
                    let n = bound.len();
                    bound.extend(vars.iter().copied());
                    for a in range {
                        for v in a.vars() {
                            if !bound.contains(&v) && seen.insert(v) {
                                out.push(v);
                            }
                        }
                    }
                    go(body, bound, out, seen);
                    bound.truncate(n);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out, &mut BTreeSet::new());
        out
    }

    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Universally quantified variables **not governed by an existential
    /// quantifier** — the domain of the defining substitution τ of Def. 3.
    pub fn instantiable_universals(&self) -> Vec<Sym> {
        fn go(f: &Rq, under_exists: bool, out: &mut Vec<Sym>) {
            match f {
                Rq::True | Rq::False | Rq::Lit(_) => {}
                Rq::And(gs) | Rq::Or(gs) => {
                    for g in gs {
                        go(g, under_exists, out);
                    }
                }
                Rq::Forall { vars, body, .. } => {
                    if !under_exists {
                        out.extend(vars.iter().copied());
                    }
                    go(body, under_exists, out);
                }
                Rq::Exists { body, .. } => go(body, true, out),
            }
        }
        let mut out = Vec::new();
        go(self, false, &mut out);
        out
    }

    /// Apply a substitution. Variables bound by quantifiers inside `self`
    /// are removed from their quantifier lists when the substitution binds
    /// them (Def. 3: "dropping quantifiers for variables grounded by τ"),
    /// and the binding is applied throughout their scope.
    ///
    /// Rectification guarantees quantified names are globally unique, so a
    /// binding can never capture.
    pub fn apply(&self, s: &Subst) -> Rq {
        match self {
            Rq::True => Rq::True,
            Rq::False => Rq::False,
            Rq::Lit(l) => Rq::Lit(s.apply_literal(l)),
            Rq::And(gs) => Rq::and(gs.iter().map(|g| g.apply(s)).collect()),
            Rq::Or(gs) => Rq::or(gs.iter().map(|g| g.apply(s)).collect()),
            Rq::Forall { vars, range, body } => {
                let remaining: Vec<Sym> = vars
                    .iter()
                    .copied()
                    .filter(|&v| s.get(v).is_none())
                    .collect();
                let range: Vec<Atom> = range.iter().map(|a| s.apply_atom(a)).collect();
                let body = body.apply(s);
                Rq::forall_node(remaining, range, body)
            }
            Rq::Exists { vars, range, body } => {
                let remaining: Vec<Sym> = vars
                    .iter()
                    .copied()
                    .filter(|&v| s.get(v).is_none())
                    .collect();
                let range: Vec<Atom> = range.iter().map(|a| s.apply_atom(a)).collect();
                let body = body.apply(s);
                Rq::exists_node(remaining, range, body)
            }
        }
    }

    /// Build a `∀` node, degrading to a plain disjunction when no
    /// variables remain quantified (absorption of Def. 3 step b).
    pub fn forall_node(vars: Vec<Sym>, range: Vec<Atom>, body: Rq) -> Rq {
        if vars.is_empty() {
            let mut parts: Vec<Rq> = range.into_iter().map(|a| Rq::Lit(a.neg())).collect();
            parts.push(body);
            Rq::or(parts)
        } else if matches!(body, Rq::True) {
            Rq::True
        } else {
            Rq::Forall {
                vars,
                range,
                body: Box::new(body),
            }
        }
    }

    /// Build an `∃` node, degrading to a plain conjunction when no
    /// variables remain quantified.
    pub fn exists_node(vars: Vec<Sym>, range: Vec<Atom>, body: Rq) -> Rq {
        if vars.is_empty() {
            let mut parts: Vec<Rq> = range.into_iter().map(|a| Rq::Lit(a.pos())).collect();
            parts.push(body);
            Rq::and(parts)
        } else if matches!(body, Rq::False) {
            Rq::False
        } else {
            Rq::Exists {
                vars,
                range,
                body: Box::new(body),
            }
        }
    }

    /// Replace the literal occurrence at `path` by `false`, applying the
    /// absorption laws on the way out (Def. 3 step b: "replacing Lτ by
    /// false … and eventually applying absorption laws").
    ///
    /// A range atom of a `∀` reads as a negative disjunct, so replacing it
    /// with `false` simply removes it from the range; a range atom of an
    /// `∃` is a conjunct, so the quantified matrix — hence the whole `∃` —
    /// collapses to `false`.
    pub fn replace_with_false(&self, path: &[RqStep]) -> Rq {
        match (self, path.split_first()) {
            (Rq::Lit(_), None) => Rq::False,
            (Rq::And(gs), Some((RqStep::Child(i), rest))) => {
                let mut parts = gs.clone();
                parts[*i] = parts[*i].replace_with_false(rest);
                Rq::and(parts)
            }
            (Rq::Or(gs), Some((RqStep::Child(i), rest))) => {
                let mut parts = gs.clone();
                parts[*i] = parts[*i].replace_with_false(rest);
                Rq::or(parts)
            }
            (Rq::Forall { vars, range, body }, Some((RqStep::Range(i), rest))) => {
                debug_assert!(rest.is_empty());
                let mut range = range.clone();
                range.remove(*i);
                Rq::forall_node(vars.clone(), range, (**body).clone())
            }
            (Rq::Exists { .. }, Some((RqStep::Range(_), rest))) => {
                debug_assert!(rest.is_empty());
                Rq::False
            }
            (Rq::Forall { vars, range, body }, Some((RqStep::Body, rest))) => {
                Rq::forall_node(vars.clone(), range.clone(), body.replace_with_false(rest))
            }
            (Rq::Exists { vars, range, body }, Some((RqStep::Body, rest))) => {
                Rq::exists_node(vars.clone(), range.clone(), body.replace_with_false(rest))
            }
            _ => panic!("replace_with_false: path does not match formula shape"),
        }
    }

    /// Is the outermost structure universal? A constraint set whose members
    /// are all universal is satisfied in the empty database (§4: "each
    /// constraint is a universal formula, i.e., its outermost quantifier is
    /// ∀" — every instance then contains a negative literal).
    pub fn is_universal(&self) -> bool {
        match self {
            Rq::True => true,
            Rq::False => false,
            Rq::Lit(l) => !l.positive,
            Rq::And(gs) | Rq::Or(gs) => gs.iter().all(|g| g.is_universal()),
            Rq::Forall { .. } => true,
            Rq::Exists { .. } => false,
        }
    }

    /// All predicate symbols occurring in the formula.
    pub fn predicates(&self) -> BTreeSet<Sym> {
        self.literals()
            .into_iter()
            .map(|o| o.literal.atom.pred)
            .collect()
    }
}

impl fmt::Debug for Rq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn vars_list(f: &mut fmt::Formatter<'_>, vars: &[Sym]) -> fmt::Result {
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
        match self {
            Rq::True => write!(f, "true"),
            Rq::False => write!(f, "false"),
            Rq::Lit(l) => write!(f, "{l}"),
            Rq::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Rq::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g:?}")?;
                }
                write!(f, ")")
            }
            Rq::Forall { vars, range, body } => {
                write!(f, "forall [")?;
                vars_list(f, vars)?;
                write!(f, "] (")?;
                for (i, a) in range.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") => {body:?}")
            }
            Rq::Exists { vars, range, body } => {
                write!(f, "exists [")?;
                vars_list(f, vars)?;
                write!(f, "] (")?;
                for (i, a) in range.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") with {body:?}")
            }
        }
    }
}

impl fmt::Display for Rq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A named, normalized integrity constraint.
#[derive(Clone, Debug)]
pub struct Constraint {
    pub name: String,
    pub rq: Rq,
}

impl Constraint {
    pub fn new(name: impl Into<String>, rq: Rq) -> Constraint {
        Constraint {
            name: name.into(),
            rq,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.rq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sym(s: &str) -> Sym {
        Sym::new(s)
    }

    /// C2 from the paper: ∀XY ¬p(X,Y) ∨ [∃Z q(X,Z) ∧ ¬s(Y,Z,a)]
    fn c2() -> Rq {
        Rq::Forall {
            vars: vec![sym("X"), sym("Y")],
            range: vec![Atom::parse_like("p", &["X", "Y"])],
            body: Box::new(Rq::Exists {
                vars: vec![sym("Z")],
                range: vec![Atom::parse_like("q", &["X", "Z"])],
                body: Box::new(Rq::Lit(Atom::parse_like("s", &["Y", "Z", "a"]).neg())),
            }),
        }
    }

    #[test]
    fn literal_occurrences_carry_polarity() {
        let lits = c2().literals();
        let rendered: Vec<String> = lits.iter().map(|o| o.literal.to_string()).collect();
        assert_eq!(rendered, vec!["not p(X,Y)", "q(X,Z)", "not s(Y,Z,a)"]);
    }

    #[test]
    fn instantiable_universals_exclude_existential_scope() {
        // X, Y are top-level universals; Z is existential. A universal
        // nested under the existential would be excluded too.
        assert_eq!(c2().instantiable_universals(), vec![sym("X"), sym("Y")]);

        let nested = Rq::Exists {
            vars: vec![sym("Z")],
            range: vec![Atom::parse_like("q", &["Z"])],
            body: Box::new(Rq::Forall {
                vars: vec![sym("W")],
                range: vec![Atom::parse_like("r", &["Z", "W"])],
                body: Box::new(Rq::Lit(Atom::parse_like("t", &["W"]).pos())),
            }),
        };
        assert!(nested.instantiable_universals().is_empty());
    }

    #[test]
    fn apply_drops_bound_quantified_vars() {
        let mut tau = Subst::new();
        tau.bind(sym("X"), Term::from_name("c1"));
        let inst = c2().apply(&tau);
        match &inst {
            Rq::Forall { vars, range, .. } => {
                assert_eq!(vars, &vec![sym("Y")]);
                assert_eq!(range[0], Atom::parse_like("p", &["c1", "Y"]));
            }
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn apply_grounding_all_vars_degrades_quantifier() {
        let c1 = Rq::Forall {
            vars: vec![sym("X")],
            range: vec![Atom::parse_like("p", &["X"])],
            body: Box::new(Rq::Lit(Atom::parse_like("q", &["X"]).pos())),
        };
        let mut tau = Subst::new();
        tau.bind(sym("X"), Term::from_name("a"));
        let inst = c1.apply(&tau);
        // ∀ collapses to ¬p(a) ∨ q(a).
        assert_eq!(
            inst,
            Rq::Or(vec![
                Rq::Lit(Atom::parse_like("p", &["a"]).neg()),
                Rq::Lit(Atom::parse_like("q", &["a"]).pos()),
            ])
        );
    }

    #[test]
    fn replace_range_atom_of_forall_removes_it() {
        let c1 = Rq::Forall {
            vars: vec![],
            range: vec![Atom::parse_like("p", &["a"])],
            body: Box::new(Rq::Lit(Atom::parse_like("q", &["a"]).pos())),
        };
        // Note: empty vars is already degenerate via forall_node, but the
        // raw node is still navigable.
        let out = c1.replace_with_false(&[RqStep::Range(0)]);
        assert_eq!(out, Rq::Lit(Atom::parse_like("q", &["a"]).pos()));
    }

    #[test]
    fn replace_in_exists_range_collapses() {
        let e = Rq::Exists {
            vars: vec![sym("Z")],
            range: vec![Atom::parse_like("q", &["Z"])],
            body: Box::new(Rq::True),
        };
        assert_eq!(e.replace_with_false(&[RqStep::Range(0)]), Rq::False);
    }

    #[test]
    fn or_and_smart_constructors_absorb() {
        assert_eq!(Rq::or(vec![Rq::False, Rq::False]), Rq::False);
        assert_eq!(Rq::or(vec![Rq::False, Rq::True]), Rq::True);
        assert_eq!(Rq::and(vec![Rq::True, Rq::True]), Rq::True);
        assert_eq!(Rq::and(vec![Rq::True, Rq::False]), Rq::False);
        let l = Rq::Lit(Atom::parse_like("p", &[]).pos());
        assert_eq!(Rq::or(vec![Rq::False, l.clone()]), l);
        assert_eq!(Rq::and(vec![l.clone(), Rq::True]), l);
        // Nested flattening.
        let m = Rq::Lit(Atom::parse_like("q", &[]).pos());
        assert_eq!(
            Rq::or(vec![Rq::Or(vec![l.clone(), m.clone()]), Rq::False]),
            Rq::Or(vec![l, m])
        );
    }

    #[test]
    fn universality_check() {
        assert!(c2().is_universal());
        let e = Rq::Exists {
            vars: vec![sym("X")],
            range: vec![Atom::parse_like("employee", &["X"])],
            body: Box::new(Rq::True),
        };
        assert!(!e.is_universal());
        assert!(Rq::Lit(Atom::parse_like("p", &["a"]).neg()).is_universal());
        assert!(!Rq::Lit(Atom::parse_like("p", &["a"]).pos()).is_universal());
    }

    #[test]
    fn free_vars_of_open_instance() {
        let mut tau = Subst::new();
        tau.bind(sym("X"), Term::Var(sym("V"))); // potential-update binding
        let inst = c2().apply(&tau);
        assert_eq!(inst.free_vars(), vec![sym("V")]);
    }

    #[test]
    fn predicates_collected() {
        let preds = c2().predicates();
        let names: Vec<&str> = preds.iter().map(|p| p.as_str()).collect();
        assert_eq!(names, vec!["p", "q", "s"]);
    }
}
