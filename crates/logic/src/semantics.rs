//! Naive model-theoretic evaluation — the semantics oracle.
//!
//! Evaluates arbitrary [`Formula`]s over an explicit finite interpretation
//! (a set of true ground facts plus an explicit domain), quantifying over
//! the whole domain. This is exponential and only suitable for tests: it
//! is the ground truth against which the range-driven [`crate::formula::Rq`]
//! evaluator and the normalization pipeline are cross-checked.

use crate::formula::Formula;
use crate::symbol::Sym;
use crate::term::{Fact, Term};
use std::collections::{HashMap, HashSet};

/// A finite interpretation: an explicit domain and the set of true facts.
#[derive(Clone, Debug, Default)]
pub struct FiniteInterp {
    pub domain: Vec<Sym>,
    pub facts: HashSet<Fact>,
}

impl FiniteInterp {
    pub fn new(domain: Vec<Sym>, facts: impl IntoIterator<Item = Fact>) -> Self {
        FiniteInterp {
            domain,
            facts: facts.into_iter().collect(),
        }
    }

    /// Build with the domain inferred from the constants of the facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Self {
        let facts: HashSet<Fact> = facts.into_iter().collect();
        let mut domain: Vec<Sym> = facts.iter().flat_map(|f| f.args.iter().copied()).collect();
        domain.sort();
        domain.dedup();
        FiniteInterp { domain, facts }
    }

    pub fn holds(&self, f: &Fact) -> bool {
        self.facts.contains(f)
    }
}

/// Evaluate `f` in `interp` under a variable assignment `env`. Free
/// variables must all be bound by `env`; panics otherwise (tests should
/// close their formulas).
pub fn eval_formula(f: &Formula, interp: &FiniteInterp, env: &mut HashMap<Sym, Sym>) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => {
            let fact = Fact {
                pred: a.pred,
                args: a
                    .args
                    .iter()
                    .map(|&t| match t {
                        Term::Const(c) => c,
                        Term::Var(v) => *env
                            .get(&v)
                            .unwrap_or_else(|| panic!("unbound variable {v} in naive evaluation")),
                    })
                    .collect(),
            };
            interp.holds(&fact)
        }
        Formula::Not(g) => !eval_formula(g, interp, env),
        Formula::And(gs) => gs.iter().all(|g| eval_formula(g, interp, env)),
        Formula::Or(gs) => gs.iter().any(|g| eval_formula(g, interp, env)),
        Formula::Implies(a, b) => !eval_formula(a, interp, env) || eval_formula(b, interp, env),
        Formula::Iff(a, b) => eval_formula(a, interp, env) == eval_formula(b, interp, env),
        Formula::Forall(vars, g) => {
            every_assignment(vars, interp, env, &mut |env| eval_formula(g, interp, env))
        }
        Formula::Exists(vars, g) => {
            !every_assignment(vars, interp, env, &mut |env| !eval_formula(g, interp, env))
        }
    }
}

fn every_assignment(
    vars: &[Sym],
    interp: &FiniteInterp,
    env: &mut HashMap<Sym, Sym>,
    check: &mut dyn FnMut(&mut HashMap<Sym, Sym>) -> bool,
) -> bool {
    match vars.split_first() {
        None => check(env),
        Some((&v, rest)) => {
            if interp.domain.is_empty() {
                // Empty domain: universal statements hold vacuously.
                return true;
            }
            for &c in &interp.domain {
                let prev = env.insert(v, c);
                let ok = every_assignment(rest, interp, env, check);
                match prev {
                    Some(p) => {
                        env.insert(v, p);
                    }
                    None => {
                        env.remove(&v);
                    }
                }
                if !ok {
                    return false;
                }
            }
            true
        }
    }
}

/// Evaluate a closed formula.
pub fn eval_closed(f: &Formula, interp: &FiniteInterp) -> bool {
    eval_formula(f, interp, &mut HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, rq_to_formula};
    use crate::parser::parse_formula;

    fn interp(facts: &[(&str, &[&str])]) -> FiniteInterp {
        FiniteInterp::from_facts(facts.iter().map(|(p, args)| Fact::parse_like(p, args)))
    }

    #[test]
    fn ground_atoms() {
        let i = interp(&[("p", &["a"])]);
        assert!(eval_closed(&parse_formula("p(a)").unwrap(), &i));
        assert!(!eval_closed(&parse_formula("p(b)").unwrap(), &i));
        assert!(eval_closed(&parse_formula("~p(b)").unwrap(), &i));
    }

    #[test]
    fn quantifiers_over_domain() {
        let i = interp(&[("p", &["a"]), ("p", &["b"]), ("q", &["a"])]);
        assert!(eval_closed(
            &parse_formula("forall X: q(X) -> p(X)").unwrap(),
            &i
        ));
        assert!(!eval_closed(
            &parse_formula("forall X: p(X) -> q(X)").unwrap(),
            &i
        ));
        assert!(eval_closed(
            &parse_formula("exists X: p(X) & q(X)").unwrap(),
            &i
        ));
        assert!(!eval_closed(
            &parse_formula("exists X: q(X) & ~p(X)").unwrap(),
            &i
        ));
    }

    #[test]
    fn empty_interpretation_satisfies_universals() {
        let i = FiniteInterp::default();
        assert!(eval_closed(
            &parse_formula("forall X: p(X) -> q(X)").unwrap(),
            &i
        ));
        assert!(!eval_closed(&parse_formula("exists X: p(X)").unwrap(), &i));
    }

    #[test]
    fn normalization_preserves_truth_paper_c2() {
        let f = parse_formula("forall X, Y: p(X,Y) -> (exists Z: q(X,Z) & ~s(Y,Z,a))").unwrap();
        let rq = normalize(&f).unwrap();
        let back = rq_to_formula(&rq);
        let cases = [
            interp(&[
                ("p", &[{ "c1" }, "c2"]),
                ("q", &["c1", "d"]),
                ("dom", &["a"]),
            ]),
            interp(&[
                ("p", &["c1", "c2"]),
                ("s", &["c2", "d", "a"]),
                ("q", &["c1", "d"]),
            ]),
            interp(&[("q", &["c1", "d"])]),
            interp(&[("p", &["c1", "c2"])]),
        ];
        for i in &cases {
            assert_eq!(
                eval_closed(&f, i),
                eval_closed(&back, i),
                "mismatch on {i:?}"
            );
        }
    }
}
