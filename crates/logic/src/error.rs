//! Error types for parsing, rule validation and normalization.

use crate::symbol::Sym;
use std::fmt;

/// Error produced by the surface-syntax parser, with 1-based position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A rule violates the range-restriction (safety) condition of §2:
/// "every variable occurring in H, or in a negative literal in B occurs in
/// a positive literal in B as well".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleError {
    pub var: Sym,
    pub rule: String,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule `{}` is not range-restricted: variable {} does not occur in a positive body literal",
            self.rule, self.var
        )
    }
}

impl std::error::Error for RuleError {}

/// Errors from normalizing a formula to restricted-quantification form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormalizeError {
    /// A quantified variable is not covered by the quantifier's range
    /// (the formula is not in — and cannot be read as — restricted
    /// quantification form, so it is not guaranteed domain independent).
    UnrestrictedVariable {
        var: Sym,
        quantifier: &'static str,
        formula: String,
    },
    /// Integrity constraints must be closed formulas.
    FreeVariables { vars: Vec<Sym>, formula: String },
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::UnrestrictedVariable {
                var,
                quantifier,
                formula,
            } => write!(
                f,
                "variable {var} of `{quantifier}` quantifier in `{formula}` is not restricted by \
                 a range literal; the formula is not domain independent"
            ),
            NormalizeError::FreeVariables { vars, formula } => {
                write!(f, "constraint `{formula}` has free variables: ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Umbrella error for loading a program from text.
#[derive(Clone, Debug)]
pub enum LogicError {
    Parse(ParseError),
    Rule(RuleError),
    Normalize(NormalizeError),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse(e) => e.fmt(f),
            LogicError::Rule(e) => e.fmt(f),
            LogicError::Normalize(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LogicError {}

impl From<ParseError> for LogicError {
    fn from(e: ParseError) -> Self {
        LogicError::Parse(e)
    }
}
impl From<RuleError> for LogicError {
    fn from(e: RuleError) -> Self {
        LogicError::Rule(e)
    }
}
impl From<NormalizeError> for LogicError {
    fn from(e: NormalizeError) -> Self {
        LogicError::Normalize(e)
    }
}
