//! Surface syntax.
//!
//! The paper writes constraints in mathematical notation and programs in
//! Prolog. We provide one textual syntax for all three kinds of items:
//!
//! ```text
//! % facts                       (ground atoms)
//! employee(jack).
//!
//! % rules                       (Prolog style, `not` or `~` for negation)
//! member(X, Y) :- leads(X, Y).
//!
//! % constraints                 (named or anonymous)
//! constraint c1: forall X: employee(X) ->
//!     (exists Y: department(Y) & member(X, Y)).
//! constraint: exists X: employee(X).
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! everything else (including integers) is a constant. Connective
//! precedence, loosest to tightest: `<->`, `->`, `|`/`or`, `&`/`and`,
//! `~`/`not`. Quantifiers (`forall X, Y: φ`, `exists X: φ`) extend as far
//! right as possible. `%` and `//` start line comments.

use crate::error::ParseError;
use crate::formula::Formula;
use crate::rule::Rule;
use crate::symbol::Sym;
use crate::term::{Atom, Fact, Literal, Term};
use std::fmt;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    ColonDash,
    Arrow,
    DArrow,
    Amp,
    Pipe,
    Tilde,
    Eof,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Spanned {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'&' => {
                    self.bump();
                    Tok::Amp
                }
                b'|' => {
                    self.bump();
                    Tok::Pipe
                }
                b'~' => {
                    self.bump();
                    Tok::Tilde
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::ColonDash
                    } else {
                        Tok::Colon
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        return Err(self.error("expected `->`"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'-') && self.peek2() == Some(b'>') {
                        self.bump();
                        self.bump();
                        Tok::DArrow
                    } else {
                        return Err(self.error("expected `<->`"));
                    }
                }
                b if b.is_ascii_alphanumeric() || b == b'_' => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(self.src[start..self.pos].to_owned())
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            };
            out.push(Spanned { tok, line, col });
        }
    }
}

/// A source position (1-based line and column). The parser attaches one
/// to every top-level item of a program so later passes — most notably
/// the static analyzer in `uniform-analyze` — can point diagnostics at
/// the offending text instead of merely naming the item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: Lexer::new(src).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let s = &self.toks[self.pos];
        ParseError {
            line: s.line,
            col: s.col,
            message: message.into(),
        }
    }

    /// Position of the token about to be consumed.
    fn span(&self) -> Span {
        let s = &self.toks[self.pos];
        Span {
            line: s.line,
            col: s.col,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    // ---- terms and atoms -------------------------------------------------

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = self.ident("predicate name")?;
        if name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_') {
            return Err(self.error(format!(
                "predicate name `{name}` must not start with an uppercase letter or `_`"
            )));
        }
        let mut args = Vec::new();
        if self.peek() == &Tok::LParen {
            self.bump();
            loop {
                let t = self.ident("term")?;
                args.push(Term::from_name(&t));
                match self.bump() {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(self.error(format!("expected `,` or `)`, found {other:?}")))
                    }
                }
            }
        }
        Ok(Atom::new(Sym::new(&name), args))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let negated = match self.peek() {
            Tok::Tilde => {
                self.bump();
                true
            }
            Tok::Ident(s) if s == "not" => {
                self.bump();
                true
            }
            _ => false,
        };
        let atom = self.atom()?;
        Ok(Literal::new(!negated, atom))
    }

    // ---- formulas ---------------------------------------------------------

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.implies()?;
        if self.peek() == &Tok::DArrow {
            self.bump();
            let rhs = self.iff()?;
            Ok(Formula::iff(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let rhs = self.implies()?;
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and()?];
        loop {
            match self.peek() {
                Tok::Pipe => {
                    self.bump();
                }
                Tok::Ident(s) if s == "or" => {
                    self.bump();
                }
                _ => break,
            }
            parts.push(self.and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Or(parts)
        })
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        loop {
            match self.peek() {
                Tok::Amp => {
                    self.bump();
                }
                Tok::Ident(s) if s == "and" => {
                    self.bump();
                }
                _ => break,
            }
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().clone() {
            Tok::Tilde => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Tok::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(f)
            }
            Tok::Ident(s) => match s.as_str() {
                "not" => {
                    self.bump();
                    Ok(Formula::not(self.unary()?))
                }
                "true" => {
                    self.bump();
                    Ok(Formula::True)
                }
                "false" => {
                    self.bump();
                    Ok(Formula::False)
                }
                "forall" | "exists" => {
                    self.bump();
                    let vars = self.var_list()?;
                    self.expect(Tok::Colon, "`:` after quantifier variables")?;
                    let body = self.formula()?;
                    Ok(if s == "forall" {
                        Formula::forall(vars, body)
                    } else {
                        Formula::exists(vars, body)
                    })
                }
                _ => Ok(Formula::Atom(self.atom()?)),
            },
            other => Err(self.error(format!("expected formula, found {other:?}"))),
        }
    }

    fn var_list(&mut self) -> Result<Vec<Sym>, ParseError> {
        let mut vars = Vec::new();
        loop {
            let name = self.ident("variable")?;
            if !(name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_')) {
                return Err(self.error(format!(
                    "quantified variable `{name}` must start with an uppercase letter or `_`"
                )));
            }
            vars.push(Sym::new(&name));
            match self.peek() {
                Tok::Comma => {
                    self.bump();
                }
                Tok::Ident(s)
                    if s.starts_with(|c: char| c.is_ascii_uppercase()) || s.starts_with('_') =>
                {
                    // space-separated variable list
                }
                _ => break,
            }
        }
        Ok(vars)
    }

    // ---- items ------------------------------------------------------------

    fn rule_tail(&mut self, head: Atom) -> Result<Rule, ParseError> {
        let mut body = vec![self.literal()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            body.push(self.literal()?);
        }
        Rule::new(head, body).map_err(|e| self.error(e.to_string()))
    }
}

/// A parsed source program: facts, rules, and (optionally named, not yet
/// normalized) constraints. The three `*_spans` vectors run parallel to
/// their item vectors (`fact_spans[i]` is the source position of
/// `facts[i]`, and so on); they are empty for programmatically built
/// sources, so every consumer must treat a missing span as "unknown".
#[derive(Clone, Debug, Default)]
pub struct ProgramSource {
    pub facts: Vec<Fact>,
    pub rules: Vec<Rule>,
    pub constraints: Vec<(Option<String>, Formula)>,
    pub fact_spans: Vec<Span>,
    pub rule_spans: Vec<Span>,
    pub constraint_spans: Vec<Span>,
}

impl ProgramSource {
    /// Span of the `i`-th rule, when the source was parsed from text.
    pub fn rule_span(&self, i: usize) -> Option<Span> {
        self.rule_spans.get(i).copied()
    }

    /// Span of the `i`-th constraint, when the source was parsed from
    /// text.
    pub fn constraint_span(&self, i: usize) -> Option<Span> {
        self.constraint_spans.get(i).copied()
    }
}

/// Parse a formula from text.
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(src)?;
    let f = p.formula()?;
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if !p.at_eof() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

/// Parse a single rule, e.g. `member(X,Y) :- leads(X,Y).`
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let mut p = Parser::new(src)?;
    let head = p.atom()?;
    p.expect(Tok::ColonDash, "`:-`")?;
    let rule = p.rule_tail(head)?;
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if !p.at_eof() {
        return Err(p.error("trailing input after rule"));
    }
    Ok(rule)
}

/// Parse a ground fact, e.g. `employee(jack).`
pub fn parse_fact(src: &str) -> Result<Fact, ParseError> {
    let mut p = Parser::new(src)?;
    let atom = p.atom()?;
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if !p.at_eof() {
        return Err(p.error("trailing input after fact"));
    }
    atom.to_fact().ok_or_else(|| p.error("fact must be ground"))
}

/// Parse an update literal: `p(a,b)` (insertion) or `not p(a,b)`
/// (deletion).
pub fn parse_literal(src: &str) -> Result<Literal, ParseError> {
    let mut p = Parser::new(src)?;
    let lit = p.literal()?;
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if !p.at_eof() {
        return Err(p.error("trailing input after literal"));
    }
    Ok(lit)
}

/// Parse a conjunctive query: a comma-separated list of literals, e.g.
/// `member(X, Y), not leads(X, Y)`.
pub fn parse_query(src: &str) -> Result<Vec<Literal>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = vec![p.literal()?];
    while p.peek() == &Tok::Comma {
        p.bump();
        out.push(p.literal()?);
    }
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if !p.at_eof() {
        return Err(p.error("trailing input after query"));
    }
    Ok(out)
}

/// Parse a whole program (facts, rules, `constraint` items).
pub fn parse_program(src: &str) -> Result<ProgramSource, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = ProgramSource::default();
    while !p.at_eof() {
        let span = p.span();
        if p.peek_ident() == Some("constraint") {
            p.bump();
            let name = if let Some(id) = p.peek_ident() {
                let n = id.to_owned();
                p.bump();
                Some(n)
            } else {
                None
            };
            p.expect(Tok::Colon, "`:` after `constraint`")?;
            let f = p.formula()?;
            p.expect(Tok::Dot, "`.` after constraint")?;
            out.constraints.push((name, f));
            out.constraint_spans.push(span);
            continue;
        }
        let head = p.atom()?;
        match p.peek() {
            Tok::ColonDash => {
                p.bump();
                let rule = p.rule_tail(head)?;
                p.expect(Tok::Dot, "`.` after rule")?;
                out.rules.push(rule);
                out.rule_spans.push(span);
            }
            Tok::Dot => {
                p.bump();
                match head.to_fact() {
                    Some(f) => out.facts.push(f),
                    None => return Err(p.error(format!("fact `{head}` must be ground"))),
                }
                out.fact_spans.push(span);
            }
            other => {
                return Err(p.error(format!("expected `.` or `:-`, found {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_rules_literals() {
        assert_eq!(
            parse_fact("leads(ann, sales).").unwrap(),
            Fact::parse_like("leads", &["ann", "sales"])
        );
        let r = parse_rule("member(X,Y) :- leads(X,Y).").unwrap();
        assert_eq!(r.to_string(), "member(X,Y) :- leads(X,Y)");
        let l = parse_literal("not q(c1, c2)").unwrap();
        assert!(!l.positive);
        assert!(parse_fact("p(X).").is_err());
    }

    #[test]
    fn propositional_atoms() {
        let f = parse_formula("rain -> wet").unwrap();
        assert_eq!(format!("{f}"), "(rain -> wet)");
    }

    #[test]
    fn precedence_and_associativity() {
        let f = parse_formula("a & b | c -> d <-> e").unwrap();
        assert_eq!(format!("{f}"), "((((a & b) | c) -> d) <-> e)");
        // -> is right-associative
        let g = parse_formula("a -> b -> c").unwrap();
        assert_eq!(format!("{g}"), "(a -> (b -> c))");
    }

    #[test]
    fn quantifier_scope_extends_right() {
        let f = parse_formula("forall X: p(X) -> q(X)").unwrap();
        assert_eq!(format!("{f}"), "(forall X: (p(X) -> q(X)))");
    }

    #[test]
    fn quantifier_variable_lists() {
        let f = parse_formula("forall X, Y: p(X,Y) -> q(Y)").unwrap();
        assert!(matches!(f, Formula::Forall(ref vs, _) if vs.len() == 2));
        let g = parse_formula("forall X Y: p(X,Y) -> q(Y)").unwrap();
        assert!(matches!(g, Formula::Forall(ref vs, _) if vs.len() == 2));
    }

    #[test]
    fn keyword_connectives() {
        let f = parse_formula("p(a) and q(b) or not r(c)").unwrap();
        assert_eq!(format!("{f}"), "((p(a) & q(b)) | ~(r(c)))");
    }

    #[test]
    fn comments_are_skipped() {
        let prog = parse_program(
            "% a comment\n p(a). // another\n q(X) :- p(X). \n constraint c: exists X: p(X).",
        )
        .unwrap();
        assert_eq!(prog.facts.len(), 1);
        assert_eq!(prog.rules.len(), 1);
        assert_eq!(prog.constraints.len(), 1);
        assert_eq!(prog.constraints[0].0.as_deref(), Some("c"));
    }

    #[test]
    fn anonymous_constraints() {
        let prog = parse_program("constraint: exists X: p(X).").unwrap();
        assert_eq!(prog.constraints[0].0, None);
    }

    #[test]
    fn paper_section5_program_parses() {
        let prog = parse_program(
            "member(X,Y) :- leads(X,Y).\n\
             constraint c1: forall X: employee(X) -> (exists Y: department(Y) & member(X,Y)).\n\
             constraint c2: forall X: department(X) -> (exists Y: employee(Y) & leads(Y,X)).\n\
             constraint c3: forall X, Y: member(X,Y) -> (forall Z: leads(Z,Y) -> subordinate(X,Z)).\n\
             constraint c4: forall X: ~subordinate(X,X).\n\
             constraint c5: exists X: employee(X).",
        )
        .unwrap();
        assert_eq!(prog.rules.len(), 1);
        assert_eq!(prog.constraints.len(), 5);
    }

    #[test]
    fn queries_parse_as_literal_lists() {
        let q = parse_query("member(X, Y), not leads(X, Y)").unwrap();
        assert_eq!(q.len(), 2);
        assert!(q[0].positive);
        assert!(!q[1].positive);
        assert!(parse_query("p(a) q(b)").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_formula("p(a) &").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.col > 1);
        let err2 = parse_program("p(a)\nq(b).").unwrap_err();
        assert_eq!(err2.line, 2);
    }

    #[test]
    fn rejects_uppercase_predicate() {
        assert!(parse_formula("P(a)").is_err());
    }

    #[test]
    fn unsafe_rule_rejected_at_parse() {
        assert!(parse_rule("r(X, Z) :- q(X).").is_err());
    }

    #[test]
    fn program_items_carry_spans() {
        let prog = parse_program("p(a).\n q(X) :- p(X).\n\n constraint c: exists X: q(X).\n r(b).")
            .unwrap();
        assert_eq!(prog.fact_spans.len(), prog.facts.len());
        assert_eq!(prog.rule_spans.len(), prog.rules.len());
        assert_eq!(prog.constraint_spans.len(), prog.constraints.len());
        assert_eq!(prog.fact_spans[0], Span { line: 1, col: 1 });
        assert_eq!(prog.rule_span(0), Some(Span { line: 2, col: 2 }));
        assert_eq!(prog.constraint_span(0), Some(Span { line: 4, col: 2 }));
        assert_eq!(prog.fact_spans[1], Span { line: 5, col: 2 });
        // Programmatic sources have no spans; accessors degrade to None.
        let empty = ProgramSource::default();
        assert_eq!(empty.rule_span(0), None);
    }

    #[test]
    fn integers_are_constants() {
        let f = parse_fact("age(jack, 42).").unwrap();
        assert_eq!(f.args[1].as_str(), "42");
    }
}
