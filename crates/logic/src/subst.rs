//! Substitutions: finite maps from variables to terms.
//!
//! Bindings may be triangular (variable-to-variable chains), so lookups
//! `walk` to a fixed point. Application never captures: the language is
//! function-free, so a resolved binding is either a constant or an unbound
//! variable.

use crate::symbol::Sym;
use crate::term::{Atom, Fact, Literal, Term};
use std::collections::HashMap;
use std::fmt;

/// A substitution σ. Empty means identity.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<Sym, Term>,
}

impl Subst {
    pub fn new() -> Subst {
        Subst::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Bind variable `v` to `t`. Panics in debug builds when rebinding a
    /// variable to a conflicting term — callers are expected to bind each
    /// variable once (unification walks before binding).
    pub fn bind(&mut self, v: Sym, t: Term) {
        debug_assert!(
            self.map.get(&v).is_none_or(|prev| *prev == t),
            "rebinding {v} (was {:?}, now {t:?})",
            self.map[&v]
        );
        self.map.insert(v, t);
    }

    /// Raw binding of `v`, without walking chains.
    pub fn get(&self, v: Sym) -> Option<Term> {
        self.map.get(&v).copied()
    }

    /// Remove the binding of `v` (trail-based undo in backtracking
    /// evaluators).
    pub fn unbind(&mut self, v: Sym) {
        self.map.remove(&v);
    }

    /// Resolve `t` through variable-to-variable chains until a constant or
    /// an unbound variable is reached.
    pub fn walk(&self, mut t: Term) -> Term {
        loop {
            match t {
                Term::Var(v) => match self.map.get(&v) {
                    Some(&next) => {
                        debug_assert!(next != t, "self-binding {v}");
                        t = next;
                    }
                    None => return t,
                },
                Term::Const(_) => return t,
            }
        }
    }

    /// Apply to a term.
    pub fn apply_term(&self, t: Term) -> Term {
        self.walk(t)
    }

    /// Apply to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|&t| self.walk(t)).collect(),
        }
    }

    /// Apply to a literal.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        Literal {
            positive: l.positive,
            atom: self.apply_atom(&l.atom),
        }
    }

    /// Ground an atom to a fact; `None` if a variable stays unresolved.
    pub fn ground_atom(&self, a: &Atom) -> Option<Fact> {
        self.apply_atom(a).to_fact()
    }

    /// Restrict to the variables in `keep`, resolving chains so that the
    /// result is a flat map. This is the paper's τ construction (Def. 3):
    /// "the restriction of σ to those universally quantified variables that
    /// are not governed by an existentially quantified variable".
    pub fn restrict(&self, keep: &[Sym]) -> Subst {
        let mut out = Subst::new();
        for &v in keep {
            let resolved = self.walk(Term::Var(v));
            if resolved != Term::Var(v) {
                out.bind(v, resolved);
            }
        }
        out
    }

    /// Variables bound by this substitution, in name order — callers
    /// render and compare domains, so the backing map's iteration order
    /// must not leak.
    pub fn domain(&self) -> impl Iterator<Item = Sym> + '_ {
        let mut vars: Vec<Sym> = self.map.keys().copied().collect();
        vars.sort_by_key(|v| v.as_str());
        vars.into_iter()
    }

    /// Merge `other` into `self`; bindings must agree on shared variables.
    /// Returns `false` (leaving `self` in an unspecified but valid state
    /// for discarding) when they conflict.
    pub fn try_union(&mut self, other: &Subst) -> bool {
        for (&v, &t) in &other.map {
            let lhs = self.walk(Term::Var(v));
            let rhs = self.walk(t);
            match (lhs, rhs) {
                (a, b) if a == b => {}
                (Term::Var(v), t) | (t, Term::Var(v)) => self.bind(v, t),
                _ => return false,
            }
        }
        true
    }
}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| v.as_str());
        write!(f, "{{")?;
        for (i, (v, t)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}/{t:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Term {
        Term::Var(Sym::new(s))
    }
    fn c(s: &str) -> Term {
        Term::Const(Sym::new(s))
    }

    #[test]
    fn walk_follows_chains() {
        let mut s = Subst::new();
        s.bind(Sym::new("X"), v("Y"));
        s.bind(Sym::new("Y"), c("a"));
        assert_eq!(s.walk(v("X")), c("a"));
        assert_eq!(s.walk(v("Z")), v("Z"));
        assert_eq!(s.walk(c("b")), c("b"));
    }

    #[test]
    fn apply_atom_substitutes_all_positions() {
        let mut s = Subst::new();
        s.bind(Sym::new("X"), c("jack"));
        let a = Atom::parse_like("enrolled", &["X", "cs"]);
        assert_eq!(
            s.apply_atom(&a),
            Atom::parse_like("enrolled", &["jack", "cs"])
        );
    }

    #[test]
    fn restrict_resolves_and_drops_identity() {
        let mut s = Subst::new();
        s.bind(Sym::new("X"), v("Y"));
        s.bind(Sym::new("Y"), c("a"));
        s.bind(Sym::new("Z"), c("b"));
        let r = s.restrict(&[Sym::new("X"), Sym::new("W")]);
        assert_eq!(r.get(Sym::new("X")), Some(c("a")));
        assert_eq!(r.get(Sym::new("Z")), None);
        assert_eq!(r.get(Sym::new("W")), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn union_detects_conflicts() {
        let mut a = Subst::new();
        a.bind(Sym::new("X"), c("a"));
        let mut b = Subst::new();
        b.bind(Sym::new("X"), c("b"));
        assert!(!a.clone().try_union(&b));
        let mut ok = Subst::new();
        ok.bind(Sym::new("X"), c("a"));
        assert!(a.try_union(&ok));
    }

    #[test]
    fn ground_atom_needs_full_bindings() {
        let mut s = Subst::new();
        s.bind(Sym::new("X"), c("a"));
        let open = Atom::parse_like("p", &["X", "Y"]);
        assert!(s.ground_atom(&open).is_none());
        s.bind(Sym::new("Y"), c("b"));
        assert_eq!(
            s.ground_atom(&open),
            Some(Fact::parse_like("p", &["a", "b"]))
        );
    }
}
