//! Unification, matching and renaming for the function-free language.
//!
//! Without function symbols there is no occurs-check to worry about:
//! bindings map variables to constants or to other variables, and
//! unification is linear in the number of argument positions.

use crate::subst::Subst;
use crate::symbol::Sym;
use crate::term::{Atom, Fact, Literal, Term};
use std::collections::HashMap;

/// Unify two terms under an accumulating substitution. Returns `false` on
/// clash (two distinct constants).
pub fn unify_terms(s: &mut Subst, a: Term, b: Term) -> bool {
    let a = s.walk(a);
    let b = s.walk(b);
    match (a, b) {
        (x, y) if x == y => true,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            s.bind(v, t);
            true
        }
        (Term::Const(_), Term::Const(_)) => false,
    }
}

/// Most general unifier of two atoms, or `None` if they do not unify.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    unify_atoms_under(&Subst::new(), a, b)
}

/// Unify two atoms extending an existing substitution.
pub fn unify_atoms_under(base: &Subst, a: &Atom, b: &Atom) -> Option<Subst> {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return None;
    }
    let mut s = base.clone();
    for (&x, &y) in a.args.iter().zip(&b.args) {
        if !unify_terms(&mut s, x, y) {
            return None;
        }
    }
    Some(s)
}

/// Most general unifier of two literals of the same sign.
pub fn unify_literals(a: &Literal, b: &Literal) -> Option<Subst> {
    if a.positive != b.positive {
        return None;
    }
    unify_atoms(&a.atom, &b.atom)
}

/// One-way matching: find σ with `pattern`σ = `ground`. Only variables of
/// the pattern are bound. Used for fact lookups and induced-update
/// instantiation.
pub fn match_atom(pattern: &Atom, ground: &Fact) -> Option<Subst> {
    if pattern.pred != ground.pred || pattern.args.len() != ground.args.len() {
        return None;
    }
    let mut s = Subst::new();
    for (&p, &g) in pattern.args.iter().zip(&ground.args) {
        match s.walk(p) {
            Term::Const(c) if c == g => {}
            Term::Const(_) => return None,
            Term::Var(v) => s.bind(v, Term::Const(g)),
        }
    }
    Some(s)
}

/// Rename the variables of an atom apart with fresh variable symbols,
/// recording the renaming in `map`. Shared variables across calls with the
/// same map stay shared — rename a whole rule with one map.
pub fn rename_atom(a: &Atom, map: &mut HashMap<Sym, Sym>) -> Atom {
    Atom {
        pred: a.pred,
        args: a
            .args
            .iter()
            .map(|&t| match t {
                Term::Const(_) => t,
                Term::Var(v) => {
                    let fresh = *map.entry(v).or_insert_with(|| Sym::fresh("_R"));
                    Term::Var(fresh)
                }
            })
            .collect(),
    }
}

/// Rename a literal apart; see [`rename_atom`].
pub fn rename_literal(l: &Literal, map: &mut HashMap<Sym, Sym>) -> Literal {
    Literal {
        positive: l.positive,
        atom: rename_atom(&l.atom, map),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, args: &[&str]) -> Atom {
        Atom::parse_like(p, args)
    }

    #[test]
    fn unifies_var_with_const() {
        let s = unify_atoms(&atom("p", &["X", "b"]), &atom("p", &["a", "Y"])).unwrap();
        assert_eq!(s.walk(Term::from_name("X")), Term::from_name("a"));
        assert_eq!(s.walk(Term::from_name("Y")), Term::from_name("b"));
    }

    #[test]
    fn clash_on_distinct_constants() {
        assert!(unify_atoms(&atom("p", &["a"]), &atom("p", &["b"])).is_none());
        assert!(unify_atoms(&atom("p", &["a"]), &atom("q", &["a"])).is_none());
        assert!(unify_atoms(&atom("p", &["a"]), &atom("p", &["a", "b"])).is_none());
    }

    #[test]
    fn var_var_sharing_propagates() {
        // p(X, X) with p(Y, a) must drive X (and Y) to a.
        let s = unify_atoms(&atom("p", &["X", "X"]), &atom("p", &["Y", "a"])).unwrap();
        assert_eq!(s.walk(Term::from_name("X")), Term::from_name("a"));
        assert_eq!(s.walk(Term::from_name("Y")), Term::from_name("a"));
    }

    #[test]
    fn repeated_var_clash() {
        assert!(unify_atoms(&atom("p", &["X", "X"]), &atom("p", &["a", "b"])).is_none());
    }

    #[test]
    fn literal_signs_must_agree() {
        let pos = atom("p", &["X"]).pos();
        let neg = atom("p", &["a"]).neg();
        assert!(unify_literals(&pos, &neg).is_none());
        assert!(unify_literals(&pos, &neg.complement()).is_some());
    }

    #[test]
    fn matching_is_one_way() {
        let f = Fact::parse_like("p", &["a", "a"]);
        assert!(match_atom(&atom("p", &["X", "X"]), &f).is_some());
        assert!(match_atom(&atom("p", &["X", "b"]), &f).is_none());
        let f2 = Fact::parse_like("p", &["a", "b"]);
        assert!(match_atom(&atom("p", &["X", "X"]), &f2).is_none());
    }

    #[test]
    fn renaming_preserves_sharing() {
        let mut map = HashMap::new();
        let a = rename_atom(&atom("p", &["X", "Y"]), &mut map);
        let b = rename_atom(&atom("q", &["X"]), &mut map);
        assert_eq!(a.args[0], b.args[0]);
        assert_ne!(a.args[0], Term::from_name("X"));
        assert!(a.args[0].is_var());
    }
}
