//! Deduction rules `H ← B`.
//!
//! A rule has a positive-literal head and a body of positive or negative
//! literals (§2). Rules must be *range-restricted*: every variable of the
//! head or of a negative body literal also occurs in a positive body
//! literal. Bodies are kept in *safe order* (positive literals first, in
//! source order), so that left-to-right evaluation reaches every negative
//! literal fully instantiated.

use crate::error::RuleError;
use crate::symbol::Sym;
use crate::term::{Atom, Literal};
use crate::unify::{rename_atom, rename_literal};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A deduction rule `head :- body`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule, validating range restriction and reordering the body
    /// into safe order.
    pub fn new(head: Atom, body: Vec<Literal>) -> Result<Rule, RuleError> {
        let mut rule = Rule { head, body };
        rule.check_range_restricted()?;
        rule.reorder_safe();
        Ok(rule)
    }

    /// A fact-like rule with an empty body (only valid for ground heads).
    pub fn is_bodyless(&self) -> bool {
        self.body.is_empty()
    }

    fn check_range_restricted(&self) -> Result<(), RuleError> {
        let positive: BTreeSet<Sym> = self
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.vars().collect::<Vec<_>>())
            .collect();
        let needs: Vec<Sym> = self
            .head
            .vars()
            .chain(
                self.body
                    .iter()
                    .filter(|l| !l.positive)
                    .flat_map(|l| l.vars().collect::<Vec<_>>()),
            )
            .collect();
        for v in needs {
            if !positive.contains(&v) {
                return Err(RuleError {
                    var: v,
                    rule: format!("{self}"),
                });
            }
        }
        Ok(())
    }

    /// Stable partition: positive body literals first. Range restriction
    /// guarantees that by the time a negative literal is evaluated
    /// left-to-right, all of its variables are bound.
    fn reorder_safe(&mut self) {
        let (pos, neg): (Vec<_>, Vec<_>) = self.body.drain(..).partition(|l| l.positive);
        self.body = pos;
        self.body.extend(neg);
    }

    /// Positive body literals (in safe order they form the body prefix).
    pub fn positive_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| l.positive)
    }

    /// Negative body literals.
    pub fn negative_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| !l.positive)
    }

    /// Rename all variables apart with fresh symbols (for resolution
    /// against goals that may share variable names).
    pub fn rename_apart(&self) -> Rule {
        let mut map = HashMap::new();
        Rule {
            head: rename_atom(&self.head, &mut map),
            body: self
                .body
                .iter()
                .map(|l| rename_literal(l, &mut map))
                .collect(),
        }
    }

    /// The body literals except the one at `skip` — the paper's `B \ L'`
    /// from Def. 4.
    pub fn body_without(&self, skip: usize) -> Vec<Literal> {
        self.body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| l.clone())
            .collect()
    }

    /// All variables occurring in the rule.
    pub fn vars(&self) -> BTreeSet<Sym> {
        let mut out: BTreeSet<Sym> = self.head.vars().collect();
        for l in &self.body {
            out.extend(l.vars());
        }
        out
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(p: &str, args: &[&str], positive: bool) -> Literal {
        Literal::new(positive, Atom::parse_like(p, args))
    }

    #[test]
    fn accepts_range_restricted_rule() {
        let r = Rule::new(
            Atom::parse_like("member", &["X", "Y"]),
            vec![lit("leads", &["X", "Y"], true)],
        )
        .unwrap();
        assert_eq!(r.to_string(), "member(X,Y) :- leads(X,Y)");
    }

    #[test]
    fn rejects_unsafe_head_variable() {
        let err = Rule::new(
            Atom::parse_like("r", &["X", "Z"]),
            vec![lit("q", &["X"], true)],
        )
        .unwrap_err();
        assert_eq!(err.var, Sym::new("Z"));
    }

    #[test]
    fn rejects_unsafe_negative_variable() {
        let err = Rule::new(
            Atom::parse_like("r", &["X"]),
            vec![lit("q", &["X"], true), lit("s", &["Y"], false)],
        )
        .unwrap_err();
        assert_eq!(err.var, Sym::new("Y"));
    }

    #[test]
    fn body_reordered_positives_first() {
        let r = Rule::new(
            Atom::parse_like("r", &["X"]),
            vec![
                lit("a", &["X"], true),
                lit("b", &["X"], false),
                lit("c", &["X"], true),
            ],
        )
        .unwrap();
        let signs: Vec<bool> = r.body.iter().map(|l| l.positive).collect();
        assert_eq!(signs, vec![true, true, false]);
        // Source order among positives preserved.
        assert_eq!(r.body[0].atom.pred, Sym::new("a"));
        assert_eq!(r.body[1].atom.pred, Sym::new("c"));
    }

    #[test]
    fn rename_apart_keeps_shape_and_sharing() {
        let r = Rule::new(
            Atom::parse_like("tc", &["X", "Z"]),
            vec![lit("edge", &["X", "Y"], true), lit("tc", &["Y", "Z"], true)],
        )
        .unwrap();
        let rn = r.rename_apart();
        assert_eq!(rn.head.pred, r.head.pred);
        // Sharing: Y in both body literals maps to the same fresh var.
        assert_eq!(rn.body[0].atom.args[1], rn.body[1].atom.args[0]);
        // And it is actually fresh.
        assert_ne!(rn.body[0].atom.args[1], r.body[0].atom.args[1]);
    }

    #[test]
    fn body_without_removes_single_literal() {
        let r = Rule::new(
            Atom::parse_like("r", &["X"]),
            vec![lit("a", &["X"], true), lit("b", &["X"], true)],
        )
        .unwrap();
        let rest = r.body_without(0);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].atom.pred, Sym::new("b"));
    }

    #[test]
    fn ground_rule_with_empty_body_allowed() {
        let r = Rule::new(Atom::parse_like("p", &["a"]), vec![]).unwrap();
        assert!(r.is_bodyless());
    }

    #[test]
    fn nonground_bodyless_rule_rejected() {
        assert!(Rule::new(Atom::parse_like("p", &["X"]), vec![]).is_err());
    }
}
