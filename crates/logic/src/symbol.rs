//! Interned symbols.
//!
//! Every identifier in the system — predicate names, constants, variable
//! names — is interned into a global table and represented by a [`Sym`]: a
//! `Copy` 4-byte handle with O(1) equality, hashing and `as_str` access.
//! The paper's language is function-free, so symbols and variables are the
//! only term constituents; interning makes unification, fact storage and
//! join evaluation cheap.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroU32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// An interned string. Cheap to copy, compare and hash.
///
/// ```
/// use uniform_logic::Sym;
/// let a = Sym::new("employee");
/// let b = Sym::new("employee");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "employee");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(NonZeroU32);

struct Interner {
    map: RwLock<HashMap<&'static str, NonZeroU32>>,
    strings: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: RwLock::new(HashMap::new()),
        strings: RwLock::new(Vec::new()),
    })
}

/// Monotone counter backing [`Sym::fresh`]. Global so that fresh names are
/// unique across databases and satisfiability searches within a process.
static FRESH: AtomicU64 = AtomicU64::new(0);

impl Sym {
    /// Intern `s` and return its handle.
    pub fn new(s: &str) -> Sym {
        let int = interner();
        if let Some(&id) = int.map.read().get(s) {
            return Sym(id);
        }
        let mut map = int.map.write();
        // Re-check under the write lock: another thread may have interned it.
        if let Some(&id) = map.get(s) {
            return Sym(id);
        }
        let mut strings = int.strings.write();
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        strings.push(leaked);
        // Length is never 0 here, so the id (the new length) is nonzero.
        let id = NonZeroU32::new(strings.len() as u32).expect("interner overflow");
        map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string. Lives for the whole process.
    pub fn as_str(self) -> &'static str {
        let strings = interner().strings.read();
        strings[(self.0.get() - 1) as usize]
    }

    /// A fresh symbol that cannot collide with parsed identifiers
    /// (contains `$`, which the lexer rejects). Used for Skolem-style
    /// constants in satisfiability search and for renaming rules apart.
    pub fn fresh(prefix: &str) -> Sym {
        let n = FRESH.fetch_add(1, Ordering::Relaxed);
        Sym::new(&format!("{prefix}${n}"))
    }

    /// True if this symbol denotes a variable under the surface-syntax
    /// convention: leading uppercase letter or `_`.
    pub fn is_var_name(self) -> bool {
        self.as_str()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase() || c == '_')
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("p");
        let b = Sym::new("p");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "p");
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        assert_ne!(Sym::new("p"), Sym::new("q"));
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Sym::fresh("c");
        let b = Sym::fresh("c");
        assert_ne!(a, b);
        assert!(a.as_str().contains('$'));
    }

    #[test]
    fn var_name_convention() {
        assert!(Sym::new("X").is_var_name());
        assert!(Sym::new("_g1").is_var_name());
        assert!(!Sym::new("x").is_var_name());
        assert!(!Sym::new("employee").is_var_name());
    }

    #[test]
    fn interner_is_thread_safe() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..200 {
                        let s = Sym::new(&format!("t{}", (i * j) % 50));
                        assert_eq!(s, Sym::new(s.as_str()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
