//! Literal subsumption.
//!
//! The paper (§3.3.1) requires discarding subsumed literals while
//! constructing the set of potential updates: "In order to stop the
//! generation of potential updates in presence of recursive rules, it is
//! necessary to discard subsumed literals while constructing the set."
//!
//! `L` subsumes `L'` iff they have the same sign and there is a
//! substitution θ with `Lθ = L'` — i.e. every instance of `L'` is an
//! instance of `L`.

use crate::subst::Subst;
use crate::term::{Atom, Literal, Term};

/// Does `general` subsume `specific` (is there θ with `general`·θ =
/// `specific`)? One-way: only variables of `general` are bound, and they
/// may be bound to variables of `specific`.
pub fn atom_subsumes(general: &Atom, specific: &Atom) -> bool {
    if general.pred != specific.pred || general.args.len() != specific.args.len() {
        return false;
    }
    let mut s = Subst::new();
    for (&g, &sp) in general.args.iter().zip(&specific.args) {
        match s.walk(g) {
            Term::Const(c) => {
                if Term::Const(c) != sp {
                    return false;
                }
            }
            Term::Var(v) => {
                // Identity bindings (shared variable names between the two
                // atoms) are fine and must not be recorded.
                if Term::Var(v) != sp {
                    s.bind(v, sp);
                }
            }
        }
    }
    true
}

/// Literal subsumption: same sign plus atom subsumption.
pub fn literal_subsumes(general: &Literal, specific: &Literal) -> bool {
    general.positive == specific.positive && atom_subsumes(&general.atom, &specific.atom)
}

/// A set of literals kept minimal under subsumption: inserting a literal
/// that is subsumed by an existing member is a no-op; inserting one that
/// subsumes existing members evicts them.
///
/// This is the data structure behind the potential-update computation
/// (Def. 5) — without it, recursive rules make the set infinite.
#[derive(Clone, Debug, Default)]
pub struct MinimalLiteralSet {
    items: Vec<Literal>,
}

impl MinimalLiteralSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `lit`; returns `true` if it was added (i.e. not already
    /// subsumed by a member).
    pub fn insert(&mut self, lit: Literal) -> bool {
        if self.items.iter().any(|have| literal_subsumes(have, &lit)) {
            return false;
        }
        self.items.retain(|have| !literal_subsumes(&lit, have));
        self.items.push(lit);
        true
    }

    pub fn contains_subsumer_of(&self, lit: &Literal) -> bool {
        self.items.iter().any(|have| literal_subsumes(have, lit))
    }

    pub fn iter(&self) -> impl Iterator<Item = &Literal> {
        self.items.iter()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn into_vec(self) -> Vec<Literal> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(p: &str, args: &[&str], positive: bool) -> Literal {
        Literal::new(positive, Atom::parse_like(p, args))
    }

    #[test]
    fn variable_subsumes_constant() {
        assert!(atom_subsumes(
            &Atom::parse_like("p", &["X"]),
            &Atom::parse_like("p", &["a"])
        ));
        assert!(!atom_subsumes(
            &Atom::parse_like("p", &["a"]),
            &Atom::parse_like("p", &["X"])
        ));
    }

    #[test]
    fn repeated_variables_constrain() {
        // p(X, X) does not subsume p(a, b), but p(X, Y) does.
        assert!(!atom_subsumes(
            &Atom::parse_like("p", &["X", "X"]),
            &Atom::parse_like("p", &["a", "b"])
        ));
        assert!(atom_subsumes(
            &Atom::parse_like("p", &["X", "Y"]),
            &Atom::parse_like("p", &["a", "b"])
        ));
        assert!(atom_subsumes(
            &Atom::parse_like("p", &["X", "Y"]),
            &Atom::parse_like("p", &["Z", "Z"])
        ));
    }

    #[test]
    fn sign_matters() {
        assert!(!literal_subsumes(
            &lit("p", &["X"], true),
            &lit("p", &["a"], false)
        ));
        assert!(literal_subsumes(
            &lit("p", &["X"], false),
            &lit("p", &["a"], false)
        ));
    }

    #[test]
    fn minimal_set_discards_subsumed() {
        let mut set = MinimalLiteralSet::new();
        assert!(set.insert(lit("p", &["a", "Y"], true)));
        // Subsumed by the first: not added.
        assert!(!set.insert(lit("p", &["a", "b"], true)));
        assert_eq!(set.len(), 1);
        // More general: evicts the first.
        assert!(set.insert(lit("p", &["X", "Y"], true)));
        assert_eq!(set.len(), 1);
        assert!(set.contains_subsumer_of(&lit("p", &["c", "d"], true)));
        // Different predicate coexists.
        assert!(set.insert(lit("q", &["X"], true)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn variant_literals_subsume_each_other() {
        let mut set = MinimalLiteralSet::new();
        assert!(set.insert(lit("p", &["X", "Y"], true)));
        assert!(!set.insert(lit("p", &["U", "V"], true)));
        assert_eq!(set.len(), 1);
    }
}
