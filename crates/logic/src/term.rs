//! Terms, atoms, literals and ground facts.
//!
//! The paper restricts the language to function-free terms: "The only terms
//! occurring in a rule are constants and variables" (§2). Atoms apply a
//! predicate symbol to terms; literals add a sign; facts are ground atoms
//! stored with constants only, which keeps the fact store and join paths
//! free of `Term` matching.

use crate::symbol::Sym;
use std::fmt;

/// A function-free term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Var(Sym),
    Const(Sym),
}

impl Term {
    /// Build a term from an identifier using the surface-syntax convention
    /// (leading uppercase / `_` means variable).
    pub fn from_name(name: &str) -> Term {
        let s = Sym::new(name);
        if s.is_var_name() {
            Term::Var(s)
        } else {
            Term::Const(s)
        }
    }

    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }

    pub fn is_const(self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// The constant symbol, if this is a constant.
    pub fn as_const(self) -> Option<Sym> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// The variable symbol, if this is a variable.
    pub fn as_var(self) -> Option<Sym> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An atom `p(t1, ..., tn)`. Propositional atoms have an empty argument
/// list.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    pub pred: Sym,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn new(pred: impl Into<Sym>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Parse-free construction helper: argument names follow the
    /// variable/constant convention.
    ///
    /// ```
    /// use uniform_logic::Atom;
    /// let a = Atom::parse_like("leads", &["X", "dept1"]);
    /// assert!(a.args[0].is_var());
    /// assert!(a.args[1].is_const());
    /// ```
    pub fn parse_like(pred: &str, args: &[&str]) -> Atom {
        Atom {
            pred: Sym::new(pred),
            args: args.iter().map(|a| Term::from_name(a)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| t.is_const())
    }

    /// Iterate over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Convert to a ground fact; `None` if any argument is a variable.
    pub fn to_fact(&self) -> Option<Fact> {
        let mut args = Vec::with_capacity(self.args.len());
        for t in &self.args {
            args.push(t.as_const()?);
        }
        Some(Fact {
            pred: self.pred,
            args,
        })
    }

    /// A positive literal over this atom.
    pub fn pos(self) -> Literal {
        Literal {
            positive: true,
            atom: self,
        }
    }

    /// A negative literal over this atom.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Literal {
        Literal {
            positive: false,
            atom: self,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A signed atom.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    pub positive: bool,
    pub atom: Atom,
}

impl Literal {
    pub fn new(positive: bool, atom: Atom) -> Literal {
        Literal { positive, atom }
    }

    /// The complementary literal (¬L, or L if this is ¬A).
    ///
    /// Updates in the paper are literals: a positive literal is an
    /// insertion, a negative one a deletion, and relevance (Def. 2) is
    /// phrased via complements.
    pub fn complement(&self) -> Literal {
        Literal {
            positive: !self.positive,
            atom: self.atom.clone(),
        }
    }

    pub fn is_ground(&self) -> bool {
        self.atom.is_ground()
    }

    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.atom.vars()
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A ground atom with constant arguments only — the unit of storage in the
/// fact base and of model construction in the satisfiability checker.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    pub pred: Sym,
    pub args: Vec<Sym>,
}

impl Fact {
    pub fn new(pred: impl Into<Sym>, args: Vec<Sym>) -> Fact {
        Fact {
            pred: pred.into(),
            args,
        }
    }

    /// Construction helper mirroring [`Atom::parse_like`]; all arguments
    /// are taken as constants.
    pub fn parse_like(pred: &str, args: &[&str]) -> Fact {
        Fact {
            pred: Sym::new(pred),
            args: args.iter().map(|a| Sym::new(a)).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// View as an (always ground) atom.
    pub fn to_atom(&self) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|&c| Term::Const(c)).collect(),
        }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_atom())
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_convention() {
        assert!(Term::from_name("X").is_var());
        assert!(Term::from_name("jack").is_const());
        assert_eq!(Term::from_name("a").as_const(), Some(Sym::new("a")));
        assert_eq!(Term::from_name("X").as_var(), Some(Sym::new("X")));
    }

    #[test]
    fn atom_groundness_and_fact_conversion() {
        let g = Atom::parse_like("enrolled", &["jack", "cs"]);
        assert!(g.is_ground());
        let f = g.to_fact().unwrap();
        assert_eq!(f, Fact::parse_like("enrolled", &["jack", "cs"]));
        assert_eq!(f.to_atom(), g);

        let open = Atom::parse_like("enrolled", &["X", "cs"]);
        assert!(!open.is_ground());
        assert!(open.to_fact().is_none());
        assert_eq!(open.vars().collect::<Vec<_>>(), vec![Sym::new("X")]);
    }

    #[test]
    fn literal_complement_is_involutive() {
        let l = Atom::parse_like("p", &["a"]).pos();
        assert_eq!(l.complement().complement(), l);
        assert!(!l.complement().positive);
    }

    #[test]
    fn display_round_trippable_shapes() {
        let l = Atom::parse_like("s", &["Y", "Z", "a"]).neg();
        assert_eq!(l.to_string(), "not s(Y,Z,a)");
        let p = Atom::parse_like("halts", &[]).pos();
        assert_eq!(p.to_string(), "halts");
    }
}
