//! Normalization of general formulas to restricted-quantification form.
//!
//! §2 of the paper assumes constraints are given in a normalized form:
//!
//! 1. *rectified* — no two quantifiers introduce the same variable;
//! 2. *miniscope* — the scope of each quantifier is reduced as much as
//!    possible;
//! 3. *negation normal form* — implications and equivalences expanded,
//!    negation only in front of atoms;
//! 4. ∨ distributed over ∧.
//!
//! and that every quantifier is *restricted*: `∃X̄ [A₁∧…∧Aₘ∧Q]` or
//! `∀X̄ [¬A₁∨…∨¬Aₘ∨Q]` with every `Xi` occurring in some `Aj`. This module
//! implements the pipeline and the final extraction into [`Rq`], rejecting
//! formulas whose quantified variables cannot be restricted (those are not
//! guaranteed domain independent, cf. Kuhns 1967).

use crate::error::NormalizeError;
use crate::formula::{Formula, Rq};
use crate::symbol::Sym;
use crate::term::{Atom, Term};
use std::collections::{HashMap, HashSet};

/// Cap on the ∨/∧ distribution blow-up at a single node. Beyond the cap
/// the disjunction is left untouched — the RQ form tolerates arbitrary
/// bodies `Q`, so this only affects how much simplification later steps
/// can do, never correctness.
const DISTRIBUTE_CAP: usize = 256;

/// Normalize a closed formula into restricted-quantification form.
pub fn normalize(f: &Formula) -> Result<Rq, NormalizeError> {
    let free = f.free_vars();
    if !free.is_empty() {
        return Err(NormalizeError::FreeVariables {
            vars: free,
            formula: format!("{f}"),
        });
    }
    normalize_open(f)
}

/// Normalize a possibly open formula (free variables allowed — used for
/// queries and internally generated instances).
pub fn normalize_open(f: &Formula) -> Result<Rq, NormalizeError> {
    let mut g = rectify(&nnf(f, true));
    for _ in 0..4 {
        let next = miniscope(distribute(&g));
        if next == g {
            break;
        }
        g = next;
    }
    let g = merge_quantifiers(g);
    to_rq(&g)
}

/// Negation normal form; also expands `→` and `↔`.
fn nnf(f: &Formula, pos: bool) -> Formula {
    match f {
        Formula::True => {
            if pos {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::False => {
            if pos {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::Atom(a) => {
            if pos {
                Formula::Atom(a.clone())
            } else {
                Formula::not(Formula::Atom(a.clone()))
            }
        }
        Formula::Not(g) => nnf(g, !pos),
        Formula::And(gs) => {
            let parts = gs.iter().map(|g| nnf(g, pos)).collect();
            if pos {
                fand(parts)
            } else {
                for_(parts)
            }
        }
        Formula::Or(gs) => {
            let parts = gs.iter().map(|g| nnf(g, pos)).collect();
            if pos {
                for_(parts)
            } else {
                fand(parts)
            }
        }
        Formula::Implies(a, b) => {
            let expanded = Formula::Or(vec![Formula::not((**a).clone()), (**b).clone()]);
            nnf(&expanded, pos)
        }
        Formula::Iff(a, b) => {
            let expanded = Formula::And(vec![
                Formula::implies((**a).clone(), (**b).clone()),
                Formula::implies((**b).clone(), (**a).clone()),
            ]);
            nnf(&expanded, pos)
        }
        Formula::Forall(vs, g) => {
            if pos {
                Formula::forall(vs.clone(), nnf(g, true))
            } else {
                Formula::exists(vs.clone(), nnf(g, false))
            }
        }
        Formula::Exists(vs, g) => {
            if pos {
                Formula::exists(vs.clone(), nnf(g, true))
            } else {
                Formula::forall(vs.clone(), nnf(g, false))
            }
        }
    }
}

/// Smart conjunction over general formulas (flattens; identity/absorbing
/// elements).
fn fand(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Formula::True => {}
            Formula::False => return Formula::False,
            Formula::And(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::True,
        1 => out.pop().unwrap(),
        _ => Formula::And(out),
    }
}

/// Smart disjunction over general formulas.
fn for_(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            Formula::False => {}
            Formula::True => return Formula::True,
            Formula::Or(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::False,
        1 => out.pop().unwrap(),
        _ => Formula::Or(out),
    }
}

/// Rename quantified variables so that no two quantifiers bind the same
/// name and no quantified name shadows a free variable. Also drops
/// vacuous quantifiers.
fn rectify(f: &Formula) -> Formula {
    fn fresh_name(base: Sym, used: &mut HashSet<Sym>) -> Sym {
        if used.insert(base) {
            return base;
        }
        for k in 2usize.. {
            let candidate = Sym::new(&format!("{base}_{k}"));
            if used.insert(candidate) {
                return candidate;
            }
        }
        unreachable!()
    }

    fn go(f: &Formula, used: &mut HashSet<Sym>, env: &mut HashMap<Sym, Vec<Sym>>) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Atom(a) => Formula::Atom(Atom {
                pred: a.pred,
                args: a
                    .args
                    .iter()
                    .map(|&t| match t {
                        Term::Var(v) => match env.get(&v).and_then(|stack| stack.last()) {
                            Some(&renamed) => Term::Var(renamed),
                            None => t,
                        },
                        Term::Const(_) => t,
                    })
                    .collect(),
            }),
            Formula::Not(g) => Formula::not(go(g, used, env)),
            Formula::And(gs) => fand(gs.iter().map(|g| go(g, used, env)).collect()),
            Formula::Or(gs) => for_(gs.iter().map(|g| go(g, used, env)).collect()),
            Formula::Implies(a, b) => Formula::implies(go(a, used, env), go(b, used, env)),
            Formula::Iff(a, b) => Formula::iff(go(a, used, env), go(b, used, env)),
            Formula::Forall(vs, g) | Formula::Exists(vs, g) => {
                let is_forall = matches!(f, Formula::Forall(..));
                let renamed: Vec<(Sym, Sym)> =
                    vs.iter().map(|&v| (v, fresh_name(v, used))).collect();
                for &(v, r) in &renamed {
                    env.entry(v).or_default().push(r);
                }
                let body = go(g, used, env);
                for &(v, _) in &renamed {
                    env.get_mut(&v).unwrap().pop();
                }
                let occurring = body.free_vars();
                let kept: Vec<Sym> = renamed
                    .iter()
                    .map(|&(_, r)| r)
                    .filter(|r| occurring.contains(r))
                    .collect();
                if kept.is_empty() {
                    body
                } else if is_forall {
                    Formula::forall(kept, body)
                } else {
                    Formula::exists(kept, body)
                }
            }
        }
    }

    let mut used: HashSet<Sym> = f.free_vars().into_iter().collect();
    go(f, &mut used, &mut HashMap::new())
}

fn free_in(f: &Formula, x: Sym) -> bool {
    f.free_vars().contains(&x)
}

/// Push quantifiers inward as far as possible (miniscope form). `∀`
/// distributes over `∧` and factors out disjuncts not mentioning the
/// variable; `∃` dually.
fn miniscope(f: Formula) -> Formula {
    match f {
        Formula::And(gs) => fand(gs.into_iter().map(miniscope).collect()),
        Formula::Or(gs) => for_(gs.into_iter().map(miniscope).collect()),
        Formula::Not(g) => Formula::not(miniscope(*g)),
        Formula::Forall(vars, g) => {
            let mut body = miniscope(*g);
            for &v in vars.iter().rev() {
                body = push_quant(true, v, body);
            }
            body
        }
        Formula::Exists(vars, g) => {
            let mut body = miniscope(*g);
            for &v in vars.iter().rev() {
                body = push_quant(false, v, body);
            }
            body
        }
        leaf => leaf,
    }
}

/// Push a single quantifier (`∀` if `forall`, else `∃`) over variable `x`
/// into `g`.
fn push_quant(forall: bool, x: Sym, g: Formula) -> Formula {
    if !free_in(&g, x) {
        return g;
    }
    let wrap = |body: Formula| {
        if forall {
            Formula::forall(vec![x], body)
        } else {
            Formula::exists(vec![x], body)
        }
    };
    match g {
        // The connective the quantifier distributes over.
        Formula::And(ps) if forall => {
            fand(ps.into_iter().map(|p| push_quant(true, x, p)).collect())
        }
        Formula::Or(ps) if !forall => {
            for_(ps.into_iter().map(|p| push_quant(false, x, p)).collect())
        }
        // The dual connective: factor out parts not mentioning x.
        Formula::Or(ps) if forall => {
            let (with, without): (Vec<_>, Vec<_>) = ps.into_iter().partition(|p| free_in(p, x));
            let inner = if with.len() == 1 {
                push_quant(true, x, with.into_iter().next().unwrap())
            } else {
                wrap(for_(with))
            };
            let mut parts = without;
            parts.push(inner);
            for_(parts)
        }
        Formula::And(ps) if !forall => {
            let (with, without): (Vec<_>, Vec<_>) = ps.into_iter().partition(|p| free_in(p, x));
            let inner = if with.len() == 1 {
                push_quant(false, x, with.into_iter().next().unwrap())
            } else {
                wrap(fand(with))
            };
            let mut parts = without;
            parts.push(inner);
            fand(parts)
        }
        // Same-kind quantifier: push through (they commute).
        Formula::Forall(vs, h) if forall => Formula::forall(vs, push_quant(true, x, *h)),
        Formula::Exists(vs, h) if !forall => Formula::exists(vs, push_quant(false, x, *h)),
        other => wrap(other),
    }
}

/// Distribute ∨ over ∧ bottom-up, with a blow-up cap per node.
fn distribute(f: &Formula) -> Formula {
    match f {
        Formula::And(gs) => fand(gs.iter().map(distribute).collect()),
        Formula::Or(gs) => {
            let parts: Vec<Formula> = gs.iter().map(distribute).collect();
            let mut product = 1usize;
            for p in &parts {
                if let Formula::And(cs) = p {
                    product = product.saturating_mul(cs.len());
                }
            }
            if product <= 1 || product > DISTRIBUTE_CAP {
                return for_(parts);
            }
            let mut combos: Vec<Vec<Formula>> = vec![Vec::new()];
            for p in parts {
                match p {
                    Formula::And(cs) => {
                        let mut next = Vec::with_capacity(combos.len() * cs.len());
                        for combo in &combos {
                            for c in &cs {
                                let mut extended = combo.clone();
                                extended.push(c.clone());
                                next.push(extended);
                            }
                        }
                        combos = next;
                    }
                    other => {
                        for combo in &mut combos {
                            combo.push(other.clone());
                        }
                    }
                }
            }
            fand(combos.into_iter().map(for_).collect())
        }
        Formula::Not(g) => Formula::not(distribute(g)),
        Formula::Forall(vs, g) => Formula::forall(vs.clone(), distribute(g)),
        Formula::Exists(vs, g) => Formula::exists(vs.clone(), distribute(g)),
        leaf => leaf.clone(),
    }
}

/// Merge directly nested quantifiers of the same kind so that variable
/// groups share one range (`∀X∀Y φ` ⇒ `∀X,Y φ`).
fn merge_quantifiers(f: Formula) -> Formula {
    match f {
        Formula::And(gs) => fand(gs.into_iter().map(merge_quantifiers).collect()),
        Formula::Or(gs) => for_(gs.into_iter().map(merge_quantifiers).collect()),
        Formula::Not(g) => Formula::not(merge_quantifiers(*g)),
        Formula::Forall(mut vs, g) => match merge_quantifiers(*g) {
            Formula::Forall(inner, h) => {
                vs.extend(inner);
                Formula::forall(vs, *h)
            }
            other => Formula::forall(vs, other),
        },
        Formula::Exists(mut vs, g) => match merge_quantifiers(*g) {
            Formula::Exists(inner, h) => {
                vs.extend(inner);
                Formula::exists(vs, *h)
            }
            other => Formula::exists(vs, other),
        },
        leaf => leaf,
    }
}

/// Final extraction: read a normalized formula as [`Rq`], splitting each
/// quantifier matrix into range and body and checking range restriction.
fn to_rq(f: &Formula) -> Result<Rq, NormalizeError> {
    match f {
        Formula::True => Ok(Rq::True),
        Formula::False => Ok(Rq::False),
        Formula::Atom(a) => Ok(Rq::Lit(a.clone().pos())),
        Formula::Not(g) => match &**g {
            Formula::Atom(a) => Ok(Rq::Lit(a.clone().neg())),
            other => unreachable!("not in NNF: ~({other})"),
        },
        Formula::And(gs) => Ok(Rq::and(gs.iter().map(to_rq).collect::<Result<_, _>>()?)),
        Formula::Or(gs) => Ok(Rq::or(gs.iter().map(to_rq).collect::<Result<_, _>>()?)),
        Formula::Forall(vars, matrix) => {
            let mut vars = vars.clone();
            let mut disjuncts: Vec<Formula> = match &**matrix {
                Formula::Or(ps) => ps.clone(),
                other => vec![other.clone()],
            };
            loop {
                let mut range: Vec<Atom> = Vec::new();
                let mut rest: Vec<&Formula> = Vec::new();
                for d in &disjuncts {
                    if let Formula::Not(inner) = d {
                        if let Formula::Atom(a) = &**inner {
                            if a.vars().any(|v| vars.contains(&v)) {
                                range.push(a.clone());
                                continue;
                            }
                        }
                    }
                    rest.push(d);
                }
                if check_coverage(&vars, &range, "forall", f).is_ok() {
                    let body: Vec<Rq> = rest.iter().map(|d| to_rq(d)).collect::<Result<_, _>>()?;
                    return Ok(Rq::forall_node(vars, range, Rq::or(body)));
                }
                // Miniscoping may have pushed a `∀` into one disjunct and
                // thereby hidden a range atom from an outer variable
                // (e.g. ∀Y dept(Y) ∨ ∀X ¬assign(X,Y)). Hoisting the inner
                // quantifier back up is sound — rectification makes its
                // variables unique — and may expose the missing range.
                if !hoist_same_kind(&mut vars, &mut disjuncts, true) {
                    check_coverage(&vars, &range, "forall", f)?;
                    unreachable!("coverage just failed");
                }
            }
        }
        Formula::Exists(vars, matrix) => {
            let mut vars = vars.clone();
            let mut conjuncts: Vec<Formula> = match &**matrix {
                Formula::And(ps) => ps.clone(),
                other => vec![other.clone()],
            };
            loop {
                let mut range: Vec<Atom> = Vec::new();
                let mut rest: Vec<&Formula> = Vec::new();
                for c in &conjuncts {
                    if let Formula::Atom(a) = c {
                        if a.vars().any(|v| vars.contains(&v)) {
                            range.push(a.clone());
                            continue;
                        }
                    }
                    rest.push(c);
                }
                if check_coverage(&vars, &range, "exists", f).is_ok() {
                    let body: Vec<Rq> = rest.iter().map(|c| to_rq(c)).collect::<Result<_, _>>()?;
                    return Ok(Rq::exists_node(vars, range, Rq::and(body)));
                }
                if !hoist_same_kind(&mut vars, &mut conjuncts, false) {
                    check_coverage(&vars, &range, "exists", f)?;
                    unreachable!("coverage just failed");
                }
            }
        }
        Formula::Implies(..) | Formula::Iff(..) => unreachable!("not in NNF: {f}"),
    }
}

/// Pull directly nested same-kind quantifiers (`∀` inside the disjuncts
/// of a `∀` matrix when `forall`, `∃` inside the conjuncts of an `∃`
/// matrix otherwise) up into `vars`, flattening the exposed matrices into
/// `parts`. Returns `false` if nothing could be hoisted.
fn hoist_same_kind(vars: &mut Vec<Sym>, parts: &mut Vec<Formula>, forall: bool) -> bool {
    let mut hoisted = false;
    let mut next: Vec<Formula> = Vec::with_capacity(parts.len());
    for p in parts.drain(..) {
        match p {
            Formula::Forall(vs, h) if forall => {
                hoisted = true;
                vars.extend(vs);
                match *h {
                    Formula::Or(inner) => next.extend(inner),
                    other => next.push(other),
                }
            }
            Formula::Exists(vs, h) if !forall => {
                hoisted = true;
                vars.extend(vs);
                match *h {
                    Formula::And(inner) => next.extend(inner),
                    other => next.push(other),
                }
            }
            other => next.push(other),
        }
    }
    *parts = next;
    hoisted
}

fn check_coverage(
    vars: &[Sym],
    range: &[Atom],
    quantifier: &'static str,
    f: &Formula,
) -> Result<(), NormalizeError> {
    for &v in vars {
        if !range.iter().any(|a| a.vars().any(|w| w == v)) {
            return Err(NormalizeError::UnrestrictedVariable {
                var: v,
                quantifier,
                formula: format!("{f}"),
            });
        }
    }
    Ok(())
}

/// Convert back to a general formula (for naive-semantics cross-checks).
pub fn rq_to_formula(rq: &Rq) -> Formula {
    match rq {
        Rq::True => Formula::True,
        Rq::False => Formula::False,
        Rq::Lit(l) => {
            if l.positive {
                Formula::Atom(l.atom.clone())
            } else {
                Formula::not(Formula::Atom(l.atom.clone()))
            }
        }
        Rq::And(gs) => fand(gs.iter().map(rq_to_formula).collect()),
        Rq::Or(gs) => for_(gs.iter().map(rq_to_formula).collect()),
        Rq::Forall { vars, range, body } => {
            let mut parts: Vec<Formula> = range
                .iter()
                .map(|a| Formula::not(Formula::Atom(a.clone())))
                .collect();
            parts.push(rq_to_formula(body));
            Formula::forall(vars.clone(), for_(parts))
        }
        Rq::Exists { vars, range, body } => {
            let mut parts: Vec<Formula> = range.iter().map(|a| Formula::Atom(a.clone())).collect();
            parts.push(rq_to_formula(body));
            Formula::exists(vars.clone(), fand(parts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn norm(src: &str) -> Rq {
        normalize(&parse_formula(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_c1_normalizes() {
        // C1: ∀X [¬p(X) ∨ q(X)]
        let rq = norm("forall X: p(X) -> q(X)");
        match rq {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 1);
                assert_eq!(range, vec![Atom::parse_like("p", &["X"])]);
                assert_eq!(*body, Rq::Lit(Atom::parse_like("q", &["X"]).pos()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn paper_c2_normalizes_with_nested_existential() {
        // C2: ∀XY ¬p(X,Y) ∨ [∃Z q(X,Z) ∧ ¬s(Y,Z,a)]
        let rq = norm("forall X, Y: p(X,Y) -> (exists Z: q(X,Z) & ~s(Y,Z,a))");
        match rq {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 2);
                assert_eq!(range, vec![Atom::parse_like("p", &["X", "Y"])]);
                match *body {
                    Rq::Exists { vars, range, body } => {
                        assert_eq!(vars.len(), 1);
                        assert_eq!(range, vec![Atom::parse_like("q", &["X", "Z"])]);
                        assert_eq!(
                            *body,
                            Rq::Lit(Atom::parse_like("s", &["Y", "Z", "a"]).neg())
                        );
                    }
                    other => panic!("unexpected body: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn functional_dependency_shape() {
        // FD-style constraint (no equality in the language; a same-value
        // predicate stands in): no two leaders for one department.
        // Miniscoping nests the quantifier for Z under the leads(X,Y)
        // range, which is the more selective equivalent form.
        let rq = norm("forall X, Y, Z: leads(X,Y) & leads(Z,Y) -> same(X,Z)");
        match rq {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 2);
                assert_eq!(range.len(), 1);
                match *body {
                    Rq::Forall { vars, range, body } => {
                        assert_eq!(vars.len(), 1);
                        assert_eq!(range.len(), 1);
                        assert_eq!(*body, Rq::Lit(Atom::parse_like("same", &["X", "Z"]).pos()));
                    }
                    other => panic!("unexpected body: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_unrestricted_universal() {
        // ∀X p(X) — truth depends on the domain; not RQ-expressible.
        let f = parse_formula("forall X: p(X)").unwrap();
        assert!(matches!(
            normalize(&f),
            Err(NormalizeError::UnrestrictedVariable { .. })
        ));
    }

    #[test]
    fn rejects_unrestricted_existential_negation() {
        // ∃X ¬p(X) — likewise domain dependent.
        let f = parse_formula("exists X: ~p(X)").unwrap();
        assert!(matches!(
            normalize(&f),
            Err(NormalizeError::UnrestrictedVariable { .. })
        ));
    }

    #[test]
    fn rejects_open_constraint() {
        let f = parse_formula("p(X) -> q(X)").unwrap();
        assert!(matches!(
            normalize(&f),
            Err(NormalizeError::FreeVariables { .. })
        ));
    }

    #[test]
    fn existential_outermost_allowed() {
        // Constraint (5) of §5: ∃X employee(X)
        let rq = norm("exists X: employee(X)");
        match rq {
            Rq::Exists { vars, range, body } => {
                assert_eq!(vars.len(), 1);
                assert_eq!(range, vec![Atom::parse_like("employee", &["X"])]);
                assert_eq!(*body, Rq::True);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rectification_renames_reused_names() {
        // Both quantifiers bind X; the second must be renamed.
        let rq = norm("(forall X: p(X) -> q(X)) & (forall X: r(X) -> s(X))");
        match rq {
            Rq::And(parts) => {
                let names: Vec<Sym> = parts
                    .iter()
                    .map(|p| match p {
                        Rq::Forall { vars, .. } => vars[0],
                        other => panic!("unexpected: {other:?}"),
                    })
                    .collect();
                assert_ne!(names[0], names[1]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn miniscope_splits_conjunctive_matrix() {
        // ∀X (p(X) → q(X)) ∧ (p(X) → r(X)) becomes two independent ∀.
        let rq = norm("forall X: (p(X) -> q(X)) & (p(X) -> r(X))");
        assert!(matches!(rq, Rq::And(ref parts) if parts.len() == 2));
    }

    #[test]
    fn distribution_gives_disjunction_matrices() {
        // ∀X ¬p(X) ∨ (q(X) ∧ r(X)) — distribute, then ∀ splits over ∧.
        let rq = norm("forall X: p(X) -> q(X) & r(X)");
        match rq {
            Rq::And(parts) => {
                assert_eq!(parts.len(), 2);
                for p in parts {
                    assert!(matches!(p, Rq::Forall { .. }), "expected forall, got {p:?}");
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn vacuous_quantifier_dropped() {
        // Neither X nor Y occurs in the matrix: both quantifiers vanish.
        let rq = norm("forall X: exists Y: p(a) -> q(b)");
        assert_eq!(
            rq,
            Rq::Or(vec![
                Rq::Lit(Atom::parse_like("p", &["a"]).neg()),
                Rq::Lit(Atom::parse_like("q", &["b"]).pos()),
            ])
        );
    }

    #[test]
    fn double_negation_removed() {
        let rq = norm("~ ~ p(a)");
        assert_eq!(rq, Rq::Lit(Atom::parse_like("p", &["a"]).pos()));
    }

    #[test]
    fn iff_expanded() {
        let rq = norm("p(a) <-> q(b)");
        // (¬p∨q) ∧ (¬q∨p)
        match rq {
            Rq::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negated_quantifier_flips() {
        // ¬∃X p(X)  ⇒  ∀X ¬p(X): range p(X), body false.
        let rq = norm("~ (exists X: p(X))");
        match rq {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 1);
                assert_eq!(range.len(), 1);
                assert_eq!(*body, Rq::False);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn round_trip_preserves_shape() {
        let rq = norm("forall X, Y: p(X,Y) -> (exists Z: q(X,Z) & ~s(Y,Z,a))");
        let back = rq_to_formula(&rq);
        let again = normalize(&back).unwrap();
        assert_eq!(rq, again);
    }
}
