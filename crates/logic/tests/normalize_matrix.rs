//! Systematic normalization matrix: a catalogue of constraint shapes
//! from the database literature, each checked for (a) acceptance or
//! principled rejection and (b) semantic agreement with the naive
//! quantify-over-the-domain evaluation on enumerated small
//! interpretations.

use uniform_logic::semantics::{eval_closed, FiniteInterp};
use uniform_logic::{normalize, parse_formula, rq_to_formula, Fact, NormalizeError};

/// Every subset of this fact universe is used as an interpretation.
fn universe() -> Vec<Fact> {
    let mut facts = Vec::new();
    for p in ["p", "q", "s"] {
        for c in ["a", "b"] {
            facts.push(Fact::parse_like(p, &[c]));
        }
    }
    for c1 in ["a", "b"] {
        for c2 in ["a", "b"] {
            facts.push(Fact::parse_like("r", &[c1, c2]));
        }
    }
    facts
}

/// Check semantic preservation over all 2^10 interpretations (domain
/// fixed to {a, b}).
fn assert_preserved(src: &str) {
    let f = parse_formula(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    let rq = normalize(&f).unwrap_or_else(|e| panic!("{src} should normalize: {e}"));
    let back = rq_to_formula(&rq);
    let universe = universe();
    for mask in 0u32..(1 << universe.len()) {
        let facts: Vec<Fact> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, f)| f.clone())
            .collect();
        let interp = FiniteInterp::new(
            vec![uniform_logic::Sym::new("a"), uniform_logic::Sym::new("b")],
            facts,
        );
        let original = eval_closed(&f, &interp);
        let round = eval_closed(&back, &interp);
        assert_eq!(
            original, round,
            "{src}: mismatch on mask {mask:#x} (rq = {rq})"
        );
    }
}

fn assert_rejected(src: &str) {
    let f = parse_formula(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    match normalize(&f) {
        Err(NormalizeError::UnrestrictedVariable { .. }) => {}
        Err(other) => panic!("{src}: wrong rejection {other}"),
        Ok(rq) => panic!("{src}: should be rejected as domain dependent, got {rq}"),
    }
}

#[test]
fn inclusion_dependencies() {
    assert_preserved("forall X, Y: r(X, Y) -> p(X)");
    assert_preserved("forall X, Y: r(X, Y) -> q(Y)");
}

#[test]
fn totality_constraints() {
    assert_preserved("forall X: p(X) -> (exists Y: r(X, Y))");
    assert_preserved("forall X: p(X) -> (exists Y: r(X, Y) & q(Y))");
}

#[test]
fn key_style_dependencies() {
    assert_preserved("forall X, Y, Z: r(X, Y) & r(X, Z) -> r(Y, Z)");
}

#[test]
fn exclusion_and_disjointness() {
    assert_preserved("forall X: p(X) -> ~q(X)");
    assert_preserved("forall X: ~(p(X) & q(X))");
    assert_preserved("forall X: p(X) & q(X) -> false");
}

#[test]
fn disjunctive_heads() {
    assert_preserved("forall X: p(X) -> q(X) | s(X)");
    assert_preserved("forall X: p(X) -> q(X) | (exists Y: r(X, Y))");
}

#[test]
fn existence_requirements() {
    assert_preserved("exists X: p(X)");
    // ∃ distributes over ∨, so each disjunct gets its own range.
    assert_preserved("exists X: p(X) | q(X)");
    assert_preserved("exists X: p(X) & q(X)");
    assert_preserved("exists X, Y: r(X, Y) & p(X)");
}

#[test]
fn nested_alternation() {
    assert_preserved("forall X: p(X) -> (exists Y: r(X, Y) & (forall Z: r(Y, Z) -> q(Z)))");
    assert_preserved("exists X: p(X) & (forall Y: r(X, Y) -> q(Y))");
}

#[test]
fn negated_quantifiers() {
    assert_preserved("~(exists X: p(X) & ~q(X))");
    assert_preserved("~(forall X: p(X) -> q(X)) | s(a)");
}

#[test]
fn equivalences() {
    assert_preserved("(exists X: p(X)) <-> (exists Y: q(Y))");
    assert_preserved("p(a) <-> (forall X: q(X) -> s(X))");
}

#[test]
fn conjunction_of_constraints_in_one_formula() {
    assert_preserved("(forall X: p(X) -> q(X)) & (forall X: q(X) -> s(X)) & (exists X: p(X))");
}

#[test]
fn propositional_corner_cases() {
    assert_preserved("true");
    assert_preserved("false");
    assert_preserved("p(a) -> p(a)");
    assert_preserved("~ ~ ~p(a)");
    assert_preserved("(p(a) | q(b)) & (~p(a) | s(a))");
}

#[test]
fn ground_atoms_inside_quantifiers() {
    assert_preserved("forall X: p(X) -> q(a)");
    assert_preserved("exists X: p(X) & r(a, b)");
}

#[test]
fn multiway_distribution() {
    assert_preserved("forall X: p(X) -> (q(X) & s(X))");
    assert_preserved("forall X: p(X) -> ((q(X) | s(X)) & (s(X) | p(X)))");
}

#[test]
fn variable_reuse_across_quantifiers() {
    assert_preserved("(forall X: p(X) -> q(X)) & (exists X: p(X))");
    assert_preserved("(exists X: p(X)) | (exists X: q(X))");
}

#[test]
fn rejections_domain_dependent() {
    assert_rejected("forall X: p(X)");
    assert_rejected("exists X: ~p(X)");
    assert_rejected("forall X: p(X) | q(X)");
    assert_rejected("forall X, Y: r(X, Y) | ~p(X)"); // Y unrestricted
    assert_rejected("forall X: ~p(X) -> q(X)");
    assert_rejected("forall X: exists Y: r(X, Y)"); // X unrestricted
}

#[test]
fn implication_chains() {
    assert_preserved("forall X: p(X) -> (q(X) -> s(X))");
    assert_preserved("forall X: (p(X) & q(X)) -> s(X)");
    // The two are logically equal; check their normal forms agree
    // semantically too (covered by assert_preserved) and structurally:
    let a = normalize(&parse_formula("forall X: p(X) -> (q(X) -> s(X))").unwrap()).unwrap();
    let b = normalize(&parse_formula("forall X: (p(X) & q(X)) -> s(X)").unwrap()).unwrap();
    assert_eq!(
        a, b,
        "curried and uncurried implications normalize identically"
    );
}

#[test]
fn miniscope_hoisting_interaction() {
    // Patterns that force the hoist-retry path in range extraction.
    assert_preserved("forall X, Y: r(X, Y) -> q(Y)");
    assert_preserved("forall X, Y, Z: r(X, Y) & r(Y, Z) -> r(X, Z)");
    assert_preserved("forall Y: (exists X: r(X, Y)) -> q(Y)");
}

#[test]
fn quantifier_over_conjunction_of_ranges() {
    assert_preserved("forall X, Y: p(X) & q(Y) -> r(X, Y)");
    assert_preserved("exists X, Y: p(X) & q(Y)");
    assert_preserved("exists X, Y: p(X) & q(Y) & ~r(X, Y)");
}
