//! Property tests for the logic kernel: printer/parser round trips,
//! unification laws, subsumption laws.

use proptest::prelude::*;
use uniform_logic::{
    atom_subsumes, literal_subsumes, match_atom, parse_fact, parse_formula, parse_literal,
    parse_rule, unify_atoms, Atom, Fact, Formula, Literal, Sym, Term,
};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_map(|s| s)
}

fn arb_term_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9]{0,4}".prop_map(|s| s),    // constant
        "[A-Z][A-Za-z0-9]{0,3}".prop_map(|s| s), // variable
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_name(), prop::collection::vec(arb_term_name(), 0..4)).prop_map(|(p, args)| {
        let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        Atom::parse_like(&p, &refs)
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    (any::<bool>(), arb_atom()).prop_map(|(pos, atom)| Literal::new(pos, atom))
}

fn arb_ground_atom() -> impl Strategy<Value = Atom> {
    (
        arb_name(),
        prop::collection::vec("[a-z][a-z0-9]{0,4}", 0..4),
    )
        .prop_map(|(p, args)| {
            let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            Atom::parse_like(&p, &refs)
        })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        arb_atom().prop_map(Formula::Atom),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (inner.clone(), any::<bool>()).prop_map(|(f, forall)| {
                let v = Sym::new("Qv");
                if forall {
                    Formula::forall(vec![v], f)
                } else {
                    Formula::exists(vec![v], f)
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn formula_display_round_trips(f in arb_formula()) {
        let printed = format!("{f}");
        let parsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("printed formula failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&parsed, &f, "round trip changed the formula: {}", printed);
    }

    #[test]
    fn literal_display_round_trips(l in arb_literal()) {
        let printed = format!("{l}");
        let parsed = parse_literal(&printed).unwrap();
        prop_assert_eq!(parsed, l);
    }

    #[test]
    fn ground_atom_display_round_trips_as_fact(a in arb_ground_atom()) {
        let printed = format!("{a}.");
        let parsed: Fact = parse_fact(&printed).unwrap();
        prop_assert_eq!(parsed.to_atom(), a);
    }

    #[test]
    fn mgu_is_a_unifier(a in arb_atom(), b in arb_atom()) {
        if let Some(mgu) = unify_atoms(&a, &b) {
            prop_assert_eq!(
                mgu.apply_atom(&a),
                mgu.apply_atom(&b),
                "mgu must equalize both atoms"
            );
        }
    }

    #[test]
    fn unification_is_symmetric_in_success(a in arb_atom(), b in arb_atom()) {
        prop_assert_eq!(unify_atoms(&a, &b).is_some(), unify_atoms(&b, &a).is_some());
    }

    #[test]
    fn matching_implies_unification(pat in arb_atom(), g in arb_ground_atom()) {
        let Some(fact) = g.to_fact() else { return Ok(()); };
        if let Some(theta) = match_atom(&pat, &fact) {
            prop_assert_eq!(theta.apply_atom(&pat), g.clone(), "match must instantiate to the fact");
            prop_assert!(unify_atoms(&pat, &g).is_some());
        }
    }

    #[test]
    fn subsumption_is_reflexive(a in arb_atom()) {
        prop_assert!(atom_subsumes(&a, &a));
    }

    #[test]
    fn subsumption_respects_instances(pat in arb_atom(), g in arb_ground_atom()) {
        let Some(fact) = g.to_fact() else { return Ok(()); };
        // If the pattern matches the ground atom, it subsumes it.
        if match_atom(&pat, &fact).is_some() {
            prop_assert!(atom_subsumes(&pat, &g));
        }
        // And subsumption of a ground atom coincides with matching.
        if atom_subsumes(&pat, &g) {
            prop_assert!(match_atom(&pat, &fact).is_some());
        }
    }

    #[test]
    fn literal_subsumption_requires_same_sign(l1 in arb_literal(), l2 in arb_literal()) {
        if literal_subsumes(&l1, &l2) {
            prop_assert_eq!(l1.positive, l2.positive);
            prop_assert!(atom_subsumes(&l1.atom, &l2.atom));
        }
    }

    #[test]
    fn complement_is_involutive(l in arb_literal()) {
        prop_assert_eq!(l.complement().complement(), l);
    }

    #[test]
    fn rule_display_round_trips(
        head_args in prop::collection::vec("[A-Z]", 1..3),
        extra in prop::collection::vec(arb_term_name(), 0..2),
    ) {
        // Build a guaranteed range-restricted rule: head vars all occur in
        // the first (positive) body literal.
        let head_refs: Vec<&str> = head_args.iter().map(|s| s.as_str()).collect();
        let mut body_args = head_refs.clone();
        let extra_refs: Vec<&str> = extra.iter().map(|s| s.as_str()).collect();
        body_args.extend(extra_refs);
        let head = Atom::parse_like("h", &head_refs);
        let body = Atom::parse_like("b", &body_args);
        let rule = uniform_logic::Rule::new(head, vec![body.pos()]).unwrap();
        let printed = format!("{rule}.");
        let parsed = parse_rule(&printed).unwrap();
        prop_assert_eq!(parsed.to_string(), rule.to_string());
    }

    #[test]
    fn substitution_application_idempotent_on_ground(g in arb_ground_atom()) {
        let s = uniform_logic::Subst::new();
        prop_assert_eq!(s.apply_atom(&g), g.clone());
        // Ground atoms have no variables to bind.
        prop_assert!(g.vars().next().is_none());
        prop_assert_eq!(g.to_fact().map(|f| f.to_atom()), Some(g));
    }

    #[test]
    fn term_convention_is_total(name in arb_term_name()) {
        let t = Term::from_name(&name);
        let first = name.chars().next().unwrap();
        if first.is_ascii_uppercase() || first == '_' {
            prop_assert!(t.is_var());
        } else {
            prop_assert!(t.is_const());
        }
    }

    /// Fuzz: no parser entry point may panic, whatever the input.
    /// Errors are fine; panics are bugs.
    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,80}") {
        let _ = uniform_logic::parse_program(&s);
        let _ = parse_formula(&s);
        let _ = parse_literal(&s);
        let _ = parse_rule(&s);
        let _ = parse_fact(&s);
        let _ = uniform_logic::parse_query(&s);
    }

    /// Fuzz: mutated fragments of valid-looking programs (heavy on the
    /// tokens the grammar actually uses) must not panic either.
    #[test]
    fn parser_never_panics_on_near_miss_input(
        s in "[a-zA-Z0-9_,():~&|<>?%. -]{0,120}"
    ) {
        let _ = uniform_logic::parse_program(&s);
        let _ = parse_formula(&s);
        let _ = parse_rule(&s);
    }

    /// Round trip at the program level: printing a parsed program and
    /// re-parsing it is the identity on content we can observe.
    #[test]
    fn program_of_facts_round_trips(facts in prop::collection::vec(arb_ground_atom(), 0..8)) {
        let mut src = String::new();
        for f in &facts {
            src.push_str(&format!("{f}.\n"));
        }
        let prog = uniform_logic::parse_program(&src).unwrap();
        prop_assert_eq!(prog.facts.len(), facts.len());
        for (got, want) in prog.facts.iter().zip(&facts) {
            prop_assert_eq!(&got.to_atom(), want);
        }
    }
}
