//! # uniform-workload
//!
//! Deterministic synthetic workload generators for the experiments
//! (EXPERIMENTS.md) and for stress tests. Every generator takes explicit
//! size parameters **and a seed**: the seed drives both any sampled
//! content (update streams, random fact pools) and the insertion order of
//! the generated population, so benchmark runs are reproducible
//! seed-for-seed while different seeds exercise different store layouts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniform_datalog::{Database, Transaction, Update};
use uniform_logic::{parse_literal, Fact, Literal};

/// Append `lines` to `src` in a seed-determined order. Fact insertion
/// order shapes relation slot layout and iteration order downstream;
/// shuffling under an explicit seed makes that layout a reproducible
/// input of the workload instead of an accident of generation order.
fn push_shuffled(src: &mut String, mut lines: Vec<String>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..lines.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        lines.swap(i, j);
    }
    for line in lines {
        src.push_str(&line);
    }
}

/// The university workload of experiment E1: `student`, `enrolled`,
/// `attends` relations with `n` students, constraints requiring every
/// cs-enrolled student to attend `ddb`, plus domain constraints so the
/// full re-check has a realistic constraint set to chew through.
pub fn university(n: usize, seed: u64) -> Database {
    let mut src = String::new();
    src.push_str(
        "constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).\n\
         constraint dom_enrolled: forall X, C: enrolled(X, C) -> student(X).\n\
         constraint dom_attends: forall X, C: attends(X, C) -> student(X).\n\
         constraint has_course: forall X: student(X) -> (exists C: enrolled(X, C)).\n",
    );
    let mut lines = Vec::with_capacity(3 * n);
    for i in 0..n {
        lines.push(format!("student(s{i}).\n"));
        lines.push(format!("enrolled(s{i}, cs).\n"));
        lines.push(format!("attends(s{i}, ddb).\n"));
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("university workload parses");
    debug_assert!(db.is_consistent());
    db
}

/// An accepted update for [`university`]: a new student with enrollment
/// and attendance, as one transaction. (`n` names the new student; no
/// sampling is involved, so there is nothing to seed.)
pub fn university_good_tx(n: usize) -> Transaction {
    Transaction::new(vec![
        upd(&format!("student(new{n})")),
        upd(&format!("enrolled(new{n}, cs)")),
        upd(&format!("attends(new{n}, ddb)")),
    ])
}

/// A rejected update for [`university`]: a student enrolled in cs who
/// does not attend ddb.
pub fn university_bad_tx(n: usize) -> Transaction {
    Transaction::new(vec![
        upd(&format!("student(bad{n})")),
        upd(&format!("enrolled(bad{n}, cs)")),
    ])
}

/// The §3.2 deductive workload for E2/E4: `enrolled` derived from
/// `student` by rule, constraint on both base and derived relations, `n`
/// existing students.
pub fn deductive_university(n: usize, seed: u64) -> Database {
    let mut src = String::from(
        "enrolled(X, cs) :- student(X).\n\
         constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).\n\
         constraint attends_dom: forall X, C: attends(X, C) -> student(X).\n",
    );
    let mut lines = Vec::with_capacity(2 * n);
    for i in 0..n {
        lines.push(format!("student(s{i}).\n"));
        lines.push(format!("attends(s{i}, ddb).\n"));
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("deductive university parses");
    debug_assert!(db.is_consistent());
    db
}

/// The E3 workload, straight from §3.2: rule `r(X) ← q(X,Y) ∧ p(Y,Z)`
/// with **no constraint mentioning `r`**, and `q_count` facts `q(xi, a)`
/// so that inserting `p(a,b)` induces `q_count` irrelevant updates.
pub fn irrelevant_induction(q_count: usize, seed: u64) -> (Database, Transaction) {
    let mut src = String::from(
        "r(X) :- q(X,Y), p(Y,Z).\n\
         constraint pdom: forall X, Y: p(X,Y) -> pkey(X).\n\
         pkey(a).\n",
    );
    let lines = (0..q_count).map(|i| format!("q(x{i}, a).\n")).collect();
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("irrelevant-induction workload parses");
    debug_assert!(db.is_consistent());
    (db, Transaction::single(upd("p(a,b)")))
}

/// The E2 workload: the nonground trigger `r(X)` of the constraint is
/// *affected but unchanged* by the update — `delta` enumerates nothing,
/// `new` enumerates all `n` pre-existing instances (the Lloyd–Topor
/// comparison of §3.2).
pub fn unchanged_rule_instances(n: usize, seed: u64) -> (Database, Transaction) {
    let mut src = String::from(
        "r(X) :- q(X,Y), p(Y,Z).\n\
         constraint c: forall X: r(X) -> rbase(X).\n\
         p(a,c0).\n",
    );
    let mut lines = Vec::with_capacity(2 * n);
    for i in 0..n {
        lines.push(format!("q(x{i}, a).\n"));
        lines.push(format!("rbase(x{i}).\n"));
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("unchanged-rule-instances workload parses");
    debug_assert!(db.is_consistent());
    (db, Transaction::single(upd("p(a,b)")))
}

/// The E4 workload: the §3.2 redundant-subquery scenario with the shared
/// subquery made *derived* (1988's expensive fact access translates to
/// rule evaluation in an in-memory engine). Constraint `cdb` fires twice
/// per new student — once through the explicit `student` trigger (S₂)
/// and once through the induced `enrolled` trigger (S₁) — and both
/// instances share the derived subquery `covered(x)`, which joins the
/// student's `attends` rows against `core`.
pub fn shared_subquery_university(n: usize, courses_per_student: usize, seed: u64) -> Database {
    let mut src = String::from(
        "enrolled(X, cs) :- student(X).\n\
         covered(X) :- attends(X, C), core(C).\n\
         constraint cdb: forall X: student(X) & enrolled(X, cs) -> covered(X).\n\
         core(ddb).\n",
    );
    let mut lines = Vec::new();
    for i in 0..n {
        lines.push(format!("student(s{i}).\n"));
        lines.push(format!("attends(s{i}, ddb).\n"));
        for c in 0..courses_per_student {
            lines.push(format!("attends(s{i}, other{c}).\n"));
        }
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("shared-subquery university parses");
    debug_assert!(db.is_consistent());
    db
}

/// A transaction of `k` new students for [`shared_subquery_university`],
/// each with `courses_per_student` attendance rows (only `ddb` is core).
pub fn shared_subquery_tx(k: usize, courses_per_student: usize) -> Transaction {
    let mut updates = Vec::new();
    for i in 0..k {
        updates.push(upd(&format!("student(nx{i})")));
        updates.push(upd(&format!("attends(nx{i}, ddb)")));
        for c in 0..courses_per_student {
            updates.push(upd(&format!("attends(nx{i}, other{c})")));
        }
    }
    Transaction::new(updates)
}

/// Transitive-closure workload: a path graph of `n` nodes with `tc`
/// rules and an acyclicity constraint. Used for recursion benchmarks.
pub fn tc_chain(n: usize, seed: u64) -> Database {
    let mut src = String::from(
        "tc(X,Y) :- edge(X,Y).\n\
         tc(X,Z) :- tc(X,Y), edge(Y,Z).\n\
         constraint acyclic: forall X: tc(X,X) -> false.\n",
    );
    let lines = (0..n.saturating_sub(1))
        .map(|i| format!("edge(n{i}, n{}).\n", i + 1))
        .collect();
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("tc chain parses");
    debug_assert!(db.is_consistent());
    db
}

/// Random edge insertions for [`tc_chain`]; some close a cycle
/// (rejected), some extend the dag (accepted).
pub fn tc_updates(n: usize, count: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            upd(&format!("edge(n{a}, n{b})"))
        })
        .collect()
}

/// Employee/department instance of the §5 schema (with the repaired
/// constraint set so instances are consistent): `n` departments, each
/// led by its own manager, `per_dept` members each.
pub fn org(n: usize, per_dept: usize, seed: u64) -> Database {
    let mut src = String::from(
        "member(X,Y) :- leads(X,Y).\n\
         constraint c1: forall X: employee(X) -> (exists Y: department(Y) & member(X,Y)).\n\
         constraint c2: forall X: department(X) -> (exists Y: employee(Y) & leads(Y,X)).\n\
         constraint c3: forall X, Y: member(X,Y) -> leads(X,Y) | (forall Z: leads(Z,Y) -> subordinate(X,Z)).\n\
         constraint c4: forall X: ~subordinate(X,X).\n",
    );
    let mut lines = Vec::new();
    for d in 0..n {
        lines.push(format!("department(d{d}).\n"));
        lines.push(format!("employee(m{d}).\n"));
        lines.push(format!("leads(m{d}, d{d}).\n"));
        for e in 0..per_dept {
            lines.push(format!("employee(e{d}_{e}).\n"));
            lines.push(format!("member(e{d}_{e}, d{d}).\n"));
            lines.push(format!("subordinate(e{d}_{e}, m{d}).\n"));
        }
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("org workload parses");
    debug_assert!(db.is_consistent(), "org workload starts consistent");
    db
}

/// A mixed stream of single-fact updates against [`org`], seeded.
pub fn org_updates(n: usize, per_dept: usize, count: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            match rng.gen_range(0..4u8) {
                // New employee with no department (violates c1).
                0 => upd(&format!("employee(x{i})")),
                // Membership without subordination (violates c3 unless
                // the member is the leader).
                1 => {
                    let d = rng.gen_range(0..n);
                    upd(&format!("member(x{i}, d{d})"))
                }
                // Remove a leader (violates c2 for the department).
                2 => {
                    let d = rng.gen_range(0..n);
                    upd(&format!("not leads(m{d}, d{d})"))
                }
                // Harmless subordinate fact.
                _ => {
                    let d = rng.gen_range(0..n);
                    let e = rng.gen_range(0..per_dept.max(1));
                    upd(&format!("subordinate(e{d}_{e}, m{d})"))
                }
            }
        })
        .collect()
}

/// E8 workload: a database where only *one* of `k + 1` constraints is
/// relevant to the rule update `loud(X) :- speaker(X)`. The other `k`
/// constraints range over an `n`-row assignment relation, so a full
/// re-check pays `k × n` while the incremental rule-update check
/// compiles exactly one update constraint and evaluates per speaker.
pub fn rule_update_workload(n: usize, k: usize, speakers: usize, seed: u64) -> Database {
    let mut src = String::new();
    src.push_str("constraint loud_warned: forall X: loud(X) -> warned(X).\n");
    for i in 0..k {
        src.push_str(&format!(
            "constraint c{i}: forall X, Y: assign(X, Y) -> emp(X).\n"
        ));
    }
    let mut lines = Vec::new();
    for i in 0..n {
        lines.push(format!("emp(e{i}).\n"));
        lines.push(format!("assign(e{i}, d{}).\n", i % 8));
    }
    for j in 0..speakers {
        lines.push(format!("speaker(s{j}).\n"));
        lines.push(format!("warned(s{j}).\n"));
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("rule-update workload parses");
    debug_assert!(db.is_consistent());
    db
}

/// E9 workload for the general-formula optimizer: the constraint on
/// `p` disjoins an expensive existential over an `n`-row relation with
/// a cheap ground lookup that is always true. Written in the
/// pessimistic order, so only reordering saves the join.
///
/// Used together with [`rule_update_workload`] by the E8/E9 benches.
pub fn optimizer_workload(n: usize, seed: u64) -> Database {
    let mut src = String::from(
        "constraint guarded: forall X: p(X) ->
             (exists Y, Z: big(Y, Z) & big(Z, Y)) | ok(X).\n",
    );
    // A chain: no symmetric pair exists, so the existential always
    // fails after scanning the join.
    let mut lines: Vec<String> = (0..n)
        .map(|i| format!("big(b{i}, b{}).\n", i + 1))
        .collect();
    lines.push("ok(a0). ok(a1). ok(a2). ok(a3).\n".to_string());
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("optimizer workload parses");
    debug_assert!(db.is_consistent());
    db
}

/// Schema for the multi-writer commit-pipeline workload: each writer
/// owns a `roster{w}`/`badge{w}` relation pair guarded by a per-writer
/// constraint, plus a *shared* `vip`/`audit` pair every writer touches
/// occasionally. Private transactions from different writers have
/// disjoint read/write sets (they commit without conflicting); shared
/// ones contend and exercise first-committer-wins retries.
pub fn commit_mix_db(writers: usize, seed: u64) -> Database {
    let mut src = String::from("constraint shared: forall X: vip(X) -> audit(X).\n");
    for w in 0..writers {
        src.push_str(&format!(
            "constraint own{w}: forall X: badge{w}(X) -> roster{w}(X).\n"
        ));
    }
    let mut lines = Vec::new();
    lines.push("audit(seed).\n".to_string());
    lines.push("vip(seed).\n".to_string());
    for w in 0..writers {
        lines.push(format!("roster{w}(r{w}_seed).\n"));
        lines.push(format!("badge{w}(r{w}_seed).\n"));
    }
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("commit-mix schema parses");
    debug_assert!(db.is_consistent());
    db
}

/// One writer's transaction stream for [`commit_mix_db`]. A seeded mix
/// of: private inserts (disjoint across writers, should always admit),
/// private churn (delete badge+roster pairs), shared `vip`/`audit`
/// writes (conflict across writers), and deliberately bad transactions
/// (a badge without its roster row, a vip without audit) the integrity
/// checker must reject. Deterministic per `(writer, per_writer, seed)`.
pub fn commit_mix_stream(
    writer: usize,
    writers: usize,
    per_writer: usize,
    seed: u64,
) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed ^ (writer as u64).wrapping_mul(0x9e37_79b9));
    let w = writer % writers.max(1);
    (0..per_writer)
        .map(|i| match rng.gen_range(0..8u8) {
            // Private good transaction: roster row + badge together.
            0..=3 => Transaction::new(vec![
                upd(&format!("roster{w}(p{w}_{i})")),
                upd(&format!("badge{w}(p{w}_{i})")),
            ]),
            // Private churn: retire the seed pair (badge first) or a row
            // inserted earlier; a no-op when already gone.
            4 => Transaction::new(vec![
                upd(&format!("not badge{w}(p{w}_{})", i.saturating_sub(1))),
                upd(&format!("not roster{w}(p{w}_{})", i.saturating_sub(1))),
            ]),
            // Shared transaction: everyone reads/writes vip and audit.
            5 => Transaction::new(vec![
                upd(&format!("audit(v{i}_{w})")),
                upd(&format!("vip(v{i}_{w})")),
            ]),
            // Bad private: badge without roster — must be rejected.
            6 => Transaction::new(vec![upd(&format!("badge{w}(ghost{w}_{i})"))]),
            // Bad shared: vip without audit — must be rejected.
            _ => Transaction::new(vec![upd(&format!("vip(ghost{w}_{i})"))]),
        })
        .collect()
}

/// The full multi-writer mix: base database plus one stream per writer.
pub fn commit_mix(
    writers: usize,
    per_writer: usize,
    seed: u64,
) -> (Database, Vec<Vec<Transaction>>) {
    let db = commit_mix_db(writers, seed);
    let streams = (0..writers)
        .map(|w| commit_mix_stream(w, writers, per_writer, seed))
        .collect();
    (db, streams)
}

/// Base database for the hot-relation workload (`b6_hot_relation`): a
/// single constraint-free `ledger(key, value)` relation pre-grown to
/// `rows` tuples, so it spans many store pages. Every writer then
/// appends to *this one relation* — the worst case for relation-level
/// conflict detection (every commit invalidates every reader) and the
/// showcase for key-level detection plus chunked copy-on-write (a
/// commit clones only the pages it touches, never the pre-grown bulk).
/// Insertion order is seed-shuffled like every other generator.
pub fn hot_relation_db(rows: usize, seed: u64) -> Database {
    let mut db = Database::parse("ledger(seed_key, seed_val).").expect("hot-relation schema");
    let mut keys: Vec<usize> = (0..rows).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..keys.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        keys.swap(i, j);
    }
    for k in keys {
        db.insert_fact(&Fact::parse_like(
            "ledger",
            &[&format!("base{k}"), &format!("v{}", k % 7)],
        ));
    }
    db
}

/// Writer `writer`'s `i`-th hot-relation transaction: an insert of a
/// key no other writer (and no other round) ever touches. Disjoint by
/// construction — under key-level conflict detection these all admit
/// concurrently; under relation-level detection every concurrent pair
/// conflicts.
pub fn hot_relation_append(writer: usize, i: usize) -> Transaction {
    Transaction::single(upd(&format!("ledger(w{writer}_k{i}, w{writer}_v{i})")))
}

/// Schema for the repair / consistent-query-answering workload: a tiny
/// active domain (`a`, `b`, `c`) under four violation classes —
/// implication (`imp`), domain (`dom_s`), existential (`span`) and a
/// *derived*-trigger constraint (`flag_ok`, through the `flagged`
/// rule). The base instance is consistent; the update streams are
/// violation-heavy. Small on purpose: brute-force repair enumeration
/// over the full operation universe stays affordable, which is what
/// `tests/prop_repair.rs` needs from its oracle.
pub fn violation_mix_db(seed: u64) -> Database {
    let mut src = String::from(
        "flagged(X) :- p(X), bad(X).\n\
         constraint imp: forall X: p(X) -> q(X).\n\
         constraint dom_s: forall X, Y: s(X, Y) -> r(X).\n\
         constraint span: forall X: r(X) -> (exists Y: s(X, Y)).\n\
         constraint flag_ok: forall X: flagged(X) -> ok(X).\n",
    );
    let lines = vec![
        "p(a).\n".to_string(),
        "q(a).\n".to_string(),
        "r(b).\n".to_string(),
        "s(b, a).\n".to_string(),
        "ok(c).\n".to_string(),
    ];
    push_shuffled(&mut src, lines, seed);
    let db = Database::parse(&src).expect("violation-mix schema parses");
    debug_assert!(db.is_consistent());
    db
}

/// A violation-heavy stream of single-fact updates for
/// [`violation_mix_db`]: most entries break one of the four constraint
/// classes (missing implication targets, dangling tuples, widowed
/// existentials, derived violations via `bad`), a minority are
/// harmless. Deterministic per `(count, seed)`.
pub fn violation_updates(count: usize, seed: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let consts = ["a", "b", "c"];
    (0..count)
        .map(|_| {
            let x = consts[rng.gen_range(0..consts.len())];
            let y = consts[rng.gen_range(0..consts.len())];
            match rng.gen_range(0..8u8) {
                // Implication violation: p without q.
                0 => upd(&format!("p({x})")),
                // Deletion side of the implication.
                1 => upd(&format!("not q({x})")),
                // Derived violation: bad makes flagged true, ok missing.
                2 => upd(&format!("bad({x})")),
                // Existential violation: r without s.
                3 => upd(&format!("r({x})")),
                // Domain violation: s without r.
                4 => upd(&format!("s({x}, {y})")),
                // Deleting support of the existential.
                5 => upd(&format!("not s({x}, {y})")),
                // Harmless.
                6 => upd(&format!("ok({x})")),
                _ => upd(&format!("q({x})")),
            }
        })
        .collect()
}

/// A possibly-inconsistent small state: the consistent
/// [`violation_mix_db`] base with `churn` raw (unguarded) updates from
/// [`violation_updates`] applied — what an external loader or a
/// privileged raw writer leaves behind. This is the input shape of the
/// repair engine's differential oracle suite.
pub fn violation_state(churn: usize, seed: u64) -> Database {
    let mut db = violation_mix_db(seed);
    for u in violation_updates(churn, seed ^ 0xda7a_5eed) {
        db.apply(&u).expect("violation updates are arity-correct");
    }
    db
}

/// A violation-*dense* state: `n` independent violations of a
/// two-constraint chain (`p(X) -> q(X)` and `q(X) -> false`), so the
/// **unique** minimal repair deletes all `n` `p` facts at once. The
/// bounded enforcement search must thread all `n` enforcement chains
/// within one branch budget (~3ⁿ nodes) and refuses with
/// `BudgetExhausted` once `n` outgrows it, while the SAT backend
/// settles the whole clause set by unit propagation. A disjoint `noise`
/// relation rides along for affected-closure scoping tests. Fact order
/// is shuffled per `seed`; the semantic state is the same for every
/// seed.
pub fn violation_dense_db(n: usize, seed: u64) -> Database {
    let mut src = String::from(
        "constraint step: forall X: p(X) -> q(X).\n\
         constraint stop: forall X: q(X) -> false.\n",
    );
    let mut lines: Vec<String> = (0..n).map(|i| format!("p(c{i}).\n")).collect();
    lines.push("noise(n0).\n".to_string());
    push_shuffled(&mut src, lines, seed);
    Database::parse(&src).expect("violation-dense schema parses")
}

/// One writer's violation-heavy transaction stream for the multi-writer
/// repair workload: mostly 1–2-update transactions that violate some
/// constraint (exercising `Explain` / `AutoRepair` policies), a
/// minority self-contained good ones. Deterministic per
/// `(writer, per_writer, seed)`.
pub fn violation_mix_stream(writer: usize, per_writer: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed ^ (writer as u64).wrapping_mul(0x9e37_79b9));
    let consts = ["a", "b", "c"];
    (0..per_writer)
        .map(|i| {
            let x = consts[rng.gen_range(0..consts.len())];
            let y = consts[rng.gen_range(0..consts.len())];
            match rng.gen_range(0..6u8) {
                // Violating: p without its q.
                0 => Transaction::new(vec![upd(&format!("p({x})"))]),
                // Violating: a bad flag without the ok cover.
                1 => Transaction::new(vec![upd(&format!("bad({x})"))]),
                // Violating: dangling tuple + widowed existential.
                2 => Transaction::new(vec![upd(&format!("s({x}, {y})"))]),
                // Violating: delete an implication target.
                3 => Transaction::new(vec![upd(&format!("not q({x})"))]),
                // Good: implication pair inserted together.
                4 => Transaction::new(vec![upd(&format!("p({x})")), upd(&format!("q({x})"))]),
                // Good: fresh ok cover (distinct per writer/step).
                _ => Transaction::new(vec![upd(&format!("ok(w{writer}_{i})"))]),
            }
        })
        .collect()
}

/// The full violation-heavy multi-writer mix: base database plus one
/// stream per writer.
pub fn violation_mix(
    writers: usize,
    per_writer: usize,
    seed: u64,
) -> (Database, Vec<Vec<Transaction>>) {
    let db = violation_mix_db(seed);
    let streams = (0..writers)
        .map(|w| violation_mix_stream(w, per_writer, seed))
        .collect();
    (db, streams)
}

/// The hot-query list a serving tier would pin against
/// [`deductive_university`] databases: joins through the derived
/// predicate, bound and free literals, and a negation. Consumed by the
/// `b5_prepared_queries` bench and the prepared-vs-legacy equivalence
/// property suite.
pub fn university_read_queries() -> &'static [&'static str] {
    &[
        "enrolled(X, C)",
        "student(X), attends(X, C)",
        "enrolled(X, cs), attends(X, ddb)",
        "student(X), not attends(X, ddb)",
        "attends(s0, C)",
    ]
}

/// The hot-query list for [`violation_mix_db`] / [`violation_state`]
/// databases (one per constraint class, plus a join), for exercising
/// the `Certain` consistency level over inconsistent states.
pub fn violation_read_queries() -> &'static [&'static str] {
    &[
        "p(X)",
        "q(X)",
        "flagged(X)",
        "s(X, Y)",
        "r(X), s(X, Y)",
        "p(X), not q(X)",
    ]
}

/// Random ground facts over a fixed schema — fodder for property tests.
pub fn random_facts(
    preds: &[(&str, usize)],
    constants: &[&str],
    count: usize,
    seed: u64,
) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let (p, arity) = preds[rng.gen_range(0..preds.len())];
            let args: Vec<&str> = (0..arity)
                .map(|_| constants[rng.gen_range(0..constants.len())])
                .collect();
            Fact::parse_like(p, &args)
        })
        .collect()
}

fn upd(src: &str) -> Update {
    let lit: Literal = parse_literal(src).expect(src);
    Update::from_literal(&lit).expect("workload updates are ground")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_update_workload_shape() {
        for (n, k, s) in [(4, 1, 2), (64, 8, 8), (256, 0, 1)] {
            let db = rule_update_workload(n, k, s, 0);
            assert!(db.is_consistent());
            assert_eq!(db.constraints().len(), k + 1);
            assert_eq!(db.facts().len(), 2 * n + 2 * s);
        }
    }

    #[test]
    fn optimizer_workload_shape() {
        let db = optimizer_workload(32, 0);
        assert!(db.is_consistent());
        assert_eq!(db.constraints().len(), 1);
        // The chain has no symmetric pair: the existential disjunct is
        // unsatisfiable, so the constraint leans entirely on ok(X).
        assert!(!db.satisfies(
            &uniform_logic::normalize(
                &uniform_logic::parse_formula("exists Y, Z: big(Y, Z) & big(Z, Y)").unwrap()
            )
            .unwrap()
        ));
    }

    #[test]
    fn university_scales_and_is_consistent() {
        for n in [0, 1, 10, 50] {
            let db = university(n, 0);
            assert!(db.is_consistent());
            assert_eq!(db.facts().len(), 3 * n);
        }
    }

    #[test]
    fn seeds_are_reproducible_and_vary_layout() {
        // Same seed: identical fact iteration order. Different seed: same
        // content (as a set), typically a different order.
        let a: Vec<String> = university(30, 7)
            .facts()
            .iter()
            .map(|f| f.to_string())
            .collect();
        let b: Vec<String> = university(30, 7)
            .facts()
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_eq!(a, b, "same seed must reproduce the same layout");
        let c: Vec<String> = university(30, 8)
            .facts()
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert_ne!(a, c, "different seeds should vary insertion order");
        let (mut sa, mut sc) = (a.clone(), c.clone());
        sa.sort();
        sc.sort();
        assert_eq!(sa, sc, "content is seed-independent");
    }

    #[test]
    fn irrelevant_induction_shape() {
        let (db, tx) = irrelevant_induction(5, 0);
        assert_eq!(tx.len(), 1);
        assert_eq!(db.rules().len(), 1);
    }

    #[test]
    fn org_consistent_and_updates_deterministic() {
        let db = org(3, 2, 0);
        assert!(db.is_consistent());
        let a = org_updates(3, 2, 10, 42);
        let b = org_updates(3, 2, 10, 42);
        assert_eq!(a, b, "same seed, same stream");
    }

    #[test]
    fn tc_chain_consistent() {
        let db = tc_chain(10, 0);
        assert!(db.is_consistent());
        assert!(db.holds(&Fact::parse_like("tc", &["n0", "n9"])));
    }

    #[test]
    fn commit_mix_shape_and_determinism() {
        let (db, streams) = commit_mix(3, 10, 7);
        assert!(db.is_consistent());
        assert_eq!(db.constraints().len(), 4, "shared + one per writer");
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|s| s.len() == 10));
        // Same seed reproduces byte-identical streams; writers differ.
        let (_, again) = commit_mix(3, 10, 7);
        assert_eq!(streams, again);
        assert_ne!(streams[0], streams[1]);
        // Private transactions of different writers touch disjoint
        // relations.
        let preds = |w: usize| -> std::collections::BTreeSet<String> {
            streams[w]
                .iter()
                .flat_map(|t| t.updates.iter().map(|u| u.fact.pred.to_string()))
                .filter(|p| p.starts_with("roster") || p.starts_with("badge"))
                .collect()
        };
        assert!(preds(0).is_disjoint(&preds(1)));
    }

    #[test]
    fn violation_mix_shape_and_determinism() {
        let db = violation_mix_db(3);
        assert!(db.is_consistent());
        assert_eq!(db.constraints().len(), 4);
        assert_eq!(db.rules().len(), 1);
        // Streams are violation-heavy and reproducible.
        let (base, streams) = violation_mix(2, 12, 9);
        assert!(base.is_consistent());
        let (_, again) = violation_mix(2, 12, 9);
        assert_eq!(streams, again);
        assert_ne!(streams[0], streams[1]);
        // Raw churn produces inconsistent states often enough to matter.
        let mut inconsistent = 0;
        for seed in 0..16 {
            if !violation_state(4, seed).is_consistent() {
                inconsistent += 1;
            }
        }
        assert!(inconsistent >= 8, "only {inconsistent}/16 inconsistent");
        assert_eq!(
            violation_updates(20, 5),
            violation_updates(20, 5),
            "same seed, same stream"
        );
    }

    #[test]
    fn random_facts_deterministic() {
        let a = random_facts(&[("p", 2), ("q", 1)], &["a", "b"], 20, 7);
        let b = random_facts(&[("p", 2), ("q", 1)], &["a", "b"], 20, 7);
        assert_eq!(a, b);
    }
}
