//! Option-matrix tests for the satisfiability checker: every problem of
//! the suite under every meaningful option combination, asserting the
//! soundness contract of each profile.

use uniform_satisfiability::problems::{self, Expectation};
use uniform_satisfiability::{SatOptions, SatOutcome};

/// All profiles that are refutation-complete (every option combination
/// is — the budget only prunes *fresh-constant* branches and that is
/// tracked).
fn profiles() -> Vec<(&'static str, SatOptions)> {
    vec![
        ("default", SatOptions::default()),
        ("paper", SatOptions::paper()),
        ("tableaux", SatOptions::tableaux()),
        (
            "no-deepening",
            SatOptions {
                iterative_deepening: false,
                ..SatOptions::default()
            },
        ),
        (
            "full-check",
            SatOptions {
                incremental_checking: false,
                ..SatOptions::default()
            },
        ),
        (
            "no-range-reuse",
            SatOptions {
                range_reuse: false,
                ..SatOptions::default()
            },
        ),
        (
            "paper-no-deepening",
            SatOptions {
                iterative_deepening: false,
                ..SatOptions::paper()
            },
        ),
    ]
}

#[test]
fn unsat_problems_refuted_under_every_profile() {
    for p in problems::suite() {
        if p.expected != Expectation::Unsatisfiable {
            continue;
        }
        // The steamroller is slow under some ablations; keep the grid to
        // the fast problems and spot-check it separately below.
        if p.name == "steamroller" {
            continue;
        }
        for (name, opts) in profiles() {
            let rep = p.checker_with(opts).check();
            assert_eq!(
                rep.outcome,
                SatOutcome::Unsatisfiable,
                "{} under {name}",
                p.name
            );
        }
    }
}

#[test]
fn steamroller_under_paper_profile() {
    let p = problems::steamroller();
    let rep = p.checker_with(SatOptions::paper()).check();
    assert_eq!(rep.outcome, SatOutcome::Unsatisfiable);
}

#[test]
fn sat_problems_found_by_complete_profiles() {
    // Only the profiles with the domain-enumeration alternative are
    // complete for finite satisfiability *independently of range
    // selection* (DESIGN.md §5): our normalizer extracts maximal
    // ranges, so the as-published range-reuse alternative can miss
    // models whose witnesses never satisfy the full range conjunction
    // (household-cycle is the concrete case: `∃X person(X) ∧
    // head_of(X, Y)` has no range solutions before head_of facts
    // exist). tableaux and no-range-reuse are incomplete outright.
    let complete = ["default", "no-deepening", "full-check"];
    for p in problems::suite() {
        if p.expected != Expectation::Satisfiable {
            continue;
        }
        for (name, opts) in profiles() {
            if !complete.contains(&name) {
                continue;
            }
            let rep = p.checker_with(opts).check();
            assert!(
                rep.outcome.is_satisfiable(),
                "{} under {name}: {:?}",
                p.name,
                rep.outcome
            );
        }
    }
}

#[test]
fn paper_profile_sound_on_satisfiable_problems() {
    // The as-published profile may fail to find a model (its reuse
    // alternative is range-selection dependent) but must never claim
    // unsatisfiability of a satisfiable set.
    for p in problems::suite() {
        if p.expected != Expectation::Satisfiable {
            continue;
        }
        for opts in [
            SatOptions::paper(),
            SatOptions {
                iterative_deepening: false,
                ..SatOptions::paper()
            },
        ] {
            let rep = p.checker_with(opts).check();
            assert_ne!(
                rep.outcome,
                SatOutcome::Unsatisfiable,
                "{}: paper profile refuted a satisfiable problem",
                p.name
            );
        }
    }
}

#[test]
fn unknown_never_lies() {
    // Profiles may fail to classify (Unknown) but must never return a
    // wrong definite answer on the axiom of infinity.
    let p = problems::axiom_of_infinity();
    for (name, opts) in profiles() {
        let rep = p.checker_with(opts).check();
        assert!(
            matches!(rep.outcome, SatOutcome::Unknown { .. }),
            "{name} returned a definite answer on an infinity axiom: {:?}",
            rep.outcome
        );
    }
}

#[test]
fn budget_monotonicity() {
    // If a model is found at budget b, it is found at every budget ≥ b.
    let p = problems::dependency_mix();
    let mut found_at = None;
    for budget in 0..=4 {
        let rep = p
            .checker_with(SatOptions {
                max_fresh_constants: budget,
                ..SatOptions::default()
            })
            .check();
        if rep.outcome.is_satisfiable() {
            found_at.get_or_insert(budget);
        } else if let Some(b) = found_at {
            panic!("model found at budget {b} but lost at {budget}");
        }
    }
    assert!(found_at.is_some(), "dependency-mix has a small model");
}

#[test]
fn trace_only_produced_when_requested() {
    let p = problems::paper_example_repaired();
    let silent = p.checker().check();
    assert!(silent.trace.is_empty());
    let traced = p
        .checker_with(SatOptions {
            trace: true,
            ..SatOptions::default()
        })
        .check();
    assert!(!traced.trace.is_empty());
}

#[test]
fn step_limit_degrades_to_unknown() {
    let p = problems::steamroller();
    let rep = p
        .checker_with(SatOptions {
            max_steps: 50,
            ..SatOptions::default()
        })
        .check();
    assert!(
        matches!(rep.outcome, SatOutcome::Unknown { ref reason } if reason.contains("step limit")),
        "{:?}",
        rep.outcome
    );
}

#[test]
fn domain_cap_zero_still_sound() {
    // With the domain-enumeration alternative effectively disabled by a
    // zero cap, the checker falls back to range reuse + fresh constants.
    // That sacrifices finite-sat completeness (it may answer Unknown on
    // a satisfiable problem — household-cycle does) but never soundness:
    // refutations stay refutations, and no satisfiable problem is ever
    // reported unsatisfiable.
    for p in problems::suite() {
        if p.name == "steamroller" || p.name == "axiom-of-infinity" {
            continue;
        }
        let rep = p
            .checker_with(SatOptions {
                domain_cap: 0,
                ..SatOptions::default()
            })
            .check();
        match p.expected {
            Expectation::Unsatisfiable => {
                assert_eq!(rep.outcome, SatOutcome::Unsatisfiable, "{}", p.name)
            }
            Expectation::Satisfiable => {
                assert_ne!(
                    rep.outcome,
                    SatOutcome::Unsatisfiable,
                    "{}: wrong refutation under domain_cap 0",
                    p.name
                );
            }
            Expectation::Infinite => {}
        }
    }
}
