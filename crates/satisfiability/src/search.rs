//! Finite-satisfiability checking by constraint enforcement (§4).
//!
//! The procedure "systematically attempts to construct a finite set of
//! facts such that all constraints are satisfied in the resulting
//! database", alternating two moves:
//!
//! 1. **enforcement** of violated constraint instances by fact insertion
//!    (with backtracking over disjunctive and existential alternatives);
//! 2. **determination of the constraints violated by an insertion** with
//!    the integrity-maintenance machinery — only instances relevant to
//!    the most recently added facts are considered (Prop. 2), organized
//!    in level-saturation order.
//!
//! Existential enforcement offers the alternatives of §4: reuse of
//! instantiations obtained by evaluating the restricting literals (the
//! extension over classical tableaux that targets finite models), and
//! fresh constants. A third, configurable alternative enumerates the
//! active constant domain, and the whole search is wrapped in iterative
//! deepening over the number of fresh constants: a failed attempt that
//! never hit the budget is a proof of unsatisfiability, a successful one
//! yields a finite model, and budget-limited failures deepen. This makes
//! the completeness claims of §4 rigorous under depth-first search (see
//! DESIGN.md §5).

use crate::completion::completion_constraints;
use std::collections::HashSet;
use std::sync::Arc;
use uniform_datalog::{
    all_solutions, satisfies_closed, solve_conjunction, Database, FactSet, Model, RuleSet,
};
use uniform_integrity::{simplified_instances, RelevanceIndex};
use uniform_logic::{Constraint, Fact, Literal, Rq, Subst, Sym};

/// Tunable knobs; the defaults implement the paper's method plus the
/// rigorous completeness extensions.
#[derive(Clone, Debug)]
pub struct SatOptions {
    /// Ceiling for the fresh-constant budget (iterative deepening).
    pub max_fresh_constants: usize,
    /// Deepen budgets 0,1,…,max instead of jumping straight to max.
    pub iterative_deepening: bool,
    /// §4 alternative 1: instantiate existentials from the solutions of
    /// their restricting literals.
    pub range_reuse: bool,
    /// Extension: also try every known constant for existential
    /// variables (guarantees finite-satisfiability completeness even when
    /// the range has no solution yet).
    pub domain_reuse: bool,
    /// Cap on domain-enumeration combinations per existential node.
    pub domain_cap: usize,
    /// §4 point 3: determine violated constraints from the most recent
    /// insertions only (via simplified instances). Disabling re-checks
    /// every constraint at every level (ablation baseline).
    pub incremental_checking: bool,
    /// Per-attempt enforcement step bound (resource safety net).
    pub max_steps: usize,
    /// Record a human-readable trace of the search.
    pub trace: bool,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions {
            max_fresh_constants: 8,
            iterative_deepening: true,
            range_reuse: true,
            domain_reuse: true,
            domain_cap: 256,
            incremental_checking: true,
            max_steps: 2_000_000,
            trace: false,
        }
    }
}

impl SatOptions {
    /// The paper's procedure as published: range reuse, no domain
    /// enumeration.
    pub fn paper() -> Self {
        SatOptions {
            domain_reuse: false,
            ..SatOptions::default()
        }
    }

    /// Classical tableaux / SATCHMO-style baseline: fresh constants only
    /// (§4 point 2 calls this incomplete for finite satisfiability).
    pub fn tableaux() -> Self {
        SatOptions {
            range_reuse: false,
            domain_reuse: false,
            ..SatOptions::default()
        }
    }

    /// A tightly bounded preset for yes/no classification on hot paths
    /// — e.g. the repair engine deciding whether a repairless schema is
    /// unsatisfiable outright. Small fresh-constant and step budgets,
    /// so an axiom-of-infinity schema answers `Unknown` quickly instead
    /// of deepening for seconds.
    pub fn classification() -> Self {
        SatOptions {
            max_fresh_constants: 3,
            max_steps: 100_000,
            ..SatOptions::default()
        }
    }
}

/// Search outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// A finite model exists; `explicit` is the constructed sample fact
    /// base, `model` its canonical model under the rules.
    Satisfiable {
        explicit: Vec<Fact>,
        model: Vec<Fact>,
    },
    /// No model at all (finite or infinite).
    Unsatisfiable,
    /// Resources exhausted (axiom-of-infinity behaviour, §4: such cases
    /// "cannot be avoided" — both properties are only semi-decidable).
    Unknown { reason: String },
}

impl SatOutcome {
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatOutcome::Satisfiable { .. })
    }
}

/// Search statistics (summed over deepening attempts).
#[derive(Clone, Copy, Debug, Default)]
pub struct SatStats {
    pub attempts: usize,
    pub enforcement_steps: usize,
    pub assertions: usize,
    pub undo_events: usize,
    pub max_level: usize,
    pub fresh_constants: usize,
    /// Violated-instance determinations via simplified instances.
    pub incremental_checks: usize,
    /// Full constraint-set evaluations.
    pub full_checks: usize,
}

/// Result of a satisfiability check.
#[derive(Clone, Debug)]
pub struct SatReport {
    pub outcome: SatOutcome,
    pub stats: SatStats,
    pub trace: Vec<String>,
}

/// Satisfiability checker for a set of rules and constraints.
pub struct SatChecker {
    /// The full rule set (reported models are canonical under these).
    rules: RuleSet,
    /// Rules used for derivation *during the search*: the positive ones
    /// only. Rules with negative body literals participate through their
    /// §4 completion constraints instead — letting them fire as
    /// negation-as-failure derivations would hide exactly the
    /// alternatives the completion constraints exist to expose (a
    /// negative rule `p ← d ∧ ¬q` must offer the choice of satisfying
    /// `q` instead of accepting the derived `p`). When every completion
    /// constraint holds in the positive-rules canonical model, that model
    /// provably coincides with the full stratified canonical model, so
    /// sample databases accepted by the search are genuine witnesses.
    search_rules: RuleSet,
    constraints: Vec<Constraint>,
    index: RelevanceIndex,
    seed: Vec<Fact>,
    options: SatOptions,
}

impl SatChecker {
    /// Build a checker; the §4 completion constraints for rules with
    /// negative body literals are added automatically.
    pub fn new(rules: RuleSet, mut constraints: Vec<Constraint>) -> SatChecker {
        constraints.extend(completion_constraints(rules.rules()));
        let index = RelevanceIndex::build(&constraints);
        let positive: Vec<_> = rules
            .rules()
            .iter()
            .filter(|r| r.negative_body().count() == 0)
            .cloned()
            .collect();
        let search_rules =
            RuleSet::new(positive).expect("a subset of a stratified rule set is stratified");
        SatChecker {
            rules,
            search_rules,
            constraints,
            index,
            seed: Vec::new(),
            options: SatOptions::default(),
        }
    }

    /// Check the rules and constraints of a database (the fact base is
    /// deliberately ignored: §4 — "This sample database is temporary and
    /// independent from the set of facts held on secondary storage").
    pub fn from_database(db: &Database) -> SatChecker {
        SatChecker::new(db.rules().clone(), db.constraints().to_vec())
    }

    pub fn with_options(mut self, options: SatOptions) -> SatChecker {
        self.options = options;
        self
    }

    /// Start the construction from the given facts instead of the empty
    /// set (useful for "can this database be consistently extended?").
    pub fn with_seed(mut self, seed: Vec<Fact>) -> SatChecker {
        self.seed = seed;
        self
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Run the search.
    pub fn check(&self) -> SatReport {
        let mut stats = SatStats::default();
        let budgets: Vec<usize> = if self.options.iterative_deepening {
            (0..=self.options.max_fresh_constants).collect()
        } else {
            vec![self.options.max_fresh_constants]
        };
        let mut trace = Vec::new();
        for budget in budgets {
            let mut attempt = Attempt::new(self, budget);
            let sat = attempt.run();
            stats.attempts += 1;
            stats.enforcement_steps += attempt.steps;
            stats.assertions += attempt.assertions;
            stats.undo_events += attempt.undo_events;
            stats.max_level = stats.max_level.max(attempt.max_level);
            stats.fresh_constants += attempt.fresh_generated;
            stats.incremental_checks += attempt.incremental_checks;
            stats.full_checks += attempt.full_checks;
            trace = attempt.trace;
            if sat {
                let mut explicit: Vec<Fact> = attempt.facts.iter().collect();
                explicit.sort();
                let mut model: Vec<Fact> =
                    Model::compute(&attempt.facts, &self.rules).iter().collect();
                model.sort();
                return SatReport {
                    outcome: SatOutcome::Satisfiable { explicit, model },
                    stats,
                    trace,
                };
            }
            if attempt.steps_exhausted {
                return SatReport {
                    outcome: SatOutcome::Unknown {
                        reason: format!("step limit {} exhausted", self.options.max_steps),
                    },
                    stats,
                    trace,
                };
            }
            if !attempt.budget_hit {
                // The search tree was explored exhaustively without ever
                // being pruned by the budget: refutation.
                return SatReport {
                    outcome: SatOutcome::Unsatisfiable,
                    stats,
                    trace,
                };
            }
        }
        SatReport {
            outcome: SatOutcome::Unknown {
                reason: format!(
                    "no model within {} fresh constants (possible axiom of infinity)",
                    self.options.max_fresh_constants
                ),
            },
            stats,
            trace,
        }
    }
}

/// Fresh-constant generator with readable names that avoid the problem's
/// own constants.
struct FreshGen {
    used: HashSet<Sym>,
    counter: usize,
}

impl FreshGen {
    fn new(used: HashSet<Sym>) -> FreshGen {
        FreshGen { used, counter: 0 }
    }

    fn next(&mut self) -> Sym {
        loop {
            self.counter += 1;
            let candidate = Sym::new(&format!("c{}", self.counter));
            if self.used.insert(candidate) {
                return candidate;
            }
        }
    }
}

enum TrailOp {
    Assert(Fact),
    Fresh,
}

/// One budget-bounded search attempt.
struct Attempt<'a> {
    checker: &'a SatChecker,
    budget: usize,
    facts: FactSet,
    trail: Vec<TrailOp>,
    model_cache: Option<Arc<Model>>,
    /// Model snapshot at the last level boundary (diff base).
    checkpoint: Arc<Model>,
    fresh: FreshGen,
    fresh_in_use: usize,
    fresh_generated: usize,
    budget_hit: bool,
    steps: usize,
    steps_exhausted: bool,
    assertions: usize,
    undo_events: usize,
    max_level: usize,
    incremental_checks: usize,
    full_checks: usize,
    trace: Vec<String>,
}

impl<'a> Attempt<'a> {
    fn new(checker: &'a SatChecker, budget: usize) -> Attempt<'a> {
        let mut used: HashSet<Sym> = HashSet::new();
        for c in &checker.constraints {
            for occ in c.rq.literals() {
                used.extend(occ.literal.atom.args.iter().filter_map(|t| t.as_const()));
            }
        }
        for r in checker.rules.rules() {
            used.extend(r.head.args.iter().filter_map(|t| t.as_const()));
            for l in &r.body {
                used.extend(l.atom.args.iter().filter_map(|t| t.as_const()));
            }
        }
        let facts = FactSet::from_facts(checker.seed.iter().cloned());
        for f in &checker.seed {
            used.extend(f.args.iter().copied());
        }
        let checkpoint = Arc::new(Model::compute(&facts, &checker.search_rules));
        Attempt {
            checker,
            budget,
            facts,
            trail: Vec::new(),
            model_cache: None,
            checkpoint,
            fresh: FreshGen::new(used),
            fresh_in_use: 0,
            fresh_generated: 0,
            budget_hit: false,
            steps: 0,
            steps_exhausted: false,
            assertions: 0,
            undo_events: 0,
            max_level: 0,
            incremental_checks: 0,
            full_checks: 0,
            trace: Vec::new(),
        }
    }

    fn note(&mut self, level: usize, msg: impl FnOnce() -> String) {
        if self.checker.options.trace {
            let indent = "  ".repeat(level.min(12));
            self.trace.push(format!("{indent}{}", msg()));
        }
    }

    fn model(&mut self) -> Arc<Model> {
        if self.model_cache.is_none() {
            self.model_cache = Some(Arc::new(Model::compute(
                &self.facts,
                &self.checker.search_rules,
            )));
        }
        self.model_cache.clone().expect("just computed")
    }

    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn undo_to(&mut self, mark: usize) {
        if self.trail.len() == mark {
            return;
        }
        self.undo_events += 1;
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail shorter than mark") {
                TrailOp::Assert(f) => {
                    self.facts.remove(&f);
                }
                TrailOp::Fresh => {
                    self.fresh_in_use -= 1;
                }
            }
        }
        self.model_cache = None;
    }

    fn assert_fact(&mut self, level: usize, fact: Fact) {
        if self.facts.insert(&fact) {
            self.note(level, || format!("assert {fact}"));
            self.trail.push(TrailOp::Assert(fact));
            self.model_cache = None;
            self.assertions += 1;
        }
    }

    fn run(&mut self) -> bool {
        self.run_level(0)
    }

    /// One saturation level: determine violated instances (incrementally
    /// against the checkpoint when enabled), conclude satisfiability when
    /// a full check confirms none remain, otherwise enforce and recurse.
    fn run_level(&mut self, level: usize) -> bool {
        self.max_level = self.max_level.max(level);
        let current = self.model();
        let mut violated: Vec<Rq>;
        if self.checker.options.incremental_checking && level > 0 {
            violated = self.violated_by_changes(&current);
            if violated.is_empty() {
                // Candidate success: confirm with a full check (cheap at
                // sample-database scale, and makes the procedure sound
                // unconditionally).
                violated = self.violated_full(&current);
            }
        } else {
            violated = self.violated_full(&current);
        }
        if violated.is_empty() {
            self.note(level, || "all constraints satisfied".to_string());
            return true;
        }
        self.note(level, || {
            format!("level {level}: {} violated instance(s)", violated.len())
        });
        let saved = std::mem::replace(&mut self.checkpoint, current);
        let ok = self.enforce_seq(&violated, level, &mut |s| s.run_level(level + 1));
        if !ok {
            self.checkpoint = saved;
        }
        ok
    }

    /// Violated simplified instances of constraints relevant to the
    /// changes since the checkpoint (Prop. 2 applied to the level batch).
    fn violated_by_changes(&mut self, current: &Arc<Model>) -> Vec<Rq> {
        self.incremental_checks += 1;
        let mut changes: Vec<Literal> = Vec::new();
        for f in current.iter() {
            if !self.checkpoint.contains(&f) {
                changes.push(Literal::new(true, f.to_atom()));
            }
        }
        for f in self.checkpoint.iter() {
            if !current.contains(&f) {
                changes.push(Literal::new(false, f.to_atom()));
            }
        }
        let mut out: Vec<Rq> = Vec::new();
        let mut seen: HashSet<Rq> = HashSet::new();
        for delta in &changes {
            for si in simplified_instances(&self.checker.index, &self.checker.constraints, delta) {
                debug_assert!(si.instance.is_closed());
                if !satisfies_closed(current.as_ref(), &si.instance)
                    && seen.insert(si.instance.clone())
                {
                    out.push(si.instance);
                }
            }
        }
        out
    }

    /// Full determination: every constraint evaluated outright.
    fn violated_full(&mut self, current: &Arc<Model>) -> Vec<Rq> {
        self.full_checks += 1;
        self.checker
            .constraints
            .iter()
            .filter(|c| !satisfies_closed(current.as_ref(), &c.rq))
            .map(|c| c.rq.clone())
            .collect()
    }

    /// Enforce every formula of `agenda` in order, then run `k`
    /// (`enforce_set` of the paper's Prolog, in continuation-passing
    /// style so that backtracking propagates through whole levels).
    fn enforce_seq(
        &mut self,
        agenda: &[Rq],
        level: usize,
        k: &mut dyn FnMut(&mut Self) -> bool,
    ) -> bool {
        match agenda.split_first() {
            None => k(self),
            Some((f, rest)) => {
                let mut cont = |s: &mut Self| s.enforce_seq(rest, level, k);
                self.enforce_one(f, level, &mut cont)
            }
        }
    }

    /// Enforce a single closed formula (the paper's `enforce/2`),
    /// continuing with `k` on success. Restores state and returns `false`
    /// when every alternative fails.
    fn enforce_one(&mut self, f: &Rq, level: usize, k: &mut dyn FnMut(&mut Self) -> bool) -> bool {
        self.steps += 1;
        if self.steps > self.checker.options.max_steps {
            self.steps_exhausted = true;
            return false;
        }
        // `enforce_set`'s first clause: formulas that already hold need no
        // enforcement.
        if satisfies_closed(self.model().as_ref(), f) {
            return k(self);
        }
        match f {
            Rq::True => unreachable!("true is always satisfied"),
            Rq::False => false,
            Rq::Lit(l) if l.positive => {
                let fact = l.atom.to_fact().expect("enforced literals are ground");
                let mark = self.mark();
                self.assert_fact(level, fact);
                if k(self) {
                    true
                } else {
                    self.note(level, || "backtrack".to_string());
                    self.undo_to(mark);
                    false
                }
            }
            // "Negative literals that are complementary to a fact in F
            // cannot be satisfied without undoing choices made previously."
            Rq::Lit(_) => false,
            Rq::And(gs) => self.enforce_seq(gs, level, k),
            Rq::Or(gs) => {
                for g in gs {
                    let mark = self.mark();
                    if self.enforce_one(g, level, k) {
                        return true;
                    }
                    self.undo_to(mark);
                }
                false
            }
            Rq::Forall { range, body, .. } => {
                // Satisfy every instance Qσ with Rσ true in the current
                // facts; instances arising later are caught at the next
                // level.
                let model = self.model();
                let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();
                let mut agenda: Vec<Rq> = Vec::new();
                let mut seen: HashSet<Rq> = HashSet::new();
                solve_conjunction(model.as_ref(), &lits, &mut Subst::new(), &mut |s| {
                    let inst = body.apply(s);
                    if !satisfies_closed(model.as_ref(), &inst) && seen.insert(inst.clone()) {
                        agenda.push(inst);
                    }
                    true
                });
                self.enforce_seq(&agenda, level, k)
            }
            Rq::Exists { vars, range, body } => self.enforce_exists(vars, range, body, level, k),
        }
    }

    fn enforce_exists(
        &mut self,
        vars: &[Sym],
        range: &[uniform_logic::Atom],
        body: &Rq,
        level: usize,
        k: &mut dyn FnMut(&mut Self) -> bool,
    ) -> bool {
        let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();

        // Alternative 1 (§4): satisfy Qσ for some σ with Rσ already true.
        if self.checker.options.range_reuse {
            let model = self.model();
            let sols = all_solutions(model.as_ref(), &lits, &mut Subst::new(), vars);
            drop(model);
            for sigma in sols {
                let inst = body.apply(&sigma);
                let mark = self.mark();
                if self.enforce_one(&inst, level, k) {
                    return true;
                }
                self.undo_to(mark);
            }
        }

        // Extension: try existing constants for the existential variables
        // (range enforced too). Skipped combinations whose range already
        // holds — alternative 1 covered them.
        if self.checker.options.domain_reuse && !vars.is_empty() {
            let mut domain: Vec<Sym> = self.facts.active_domain();
            for c in self.fresh.used.iter() {
                if !domain.contains(c) {
                    domain.push(*c);
                }
            }
            // Name order, not interner-id order: the enumeration order of
            // alternatives must not depend on what happened to be interned
            // earlier in the process.
            domain.sort_by_key(|s| s.as_str());
            let combos = domain
                .len()
                .checked_pow(vars.len() as u32)
                .unwrap_or(usize::MAX);
            if !domain.is_empty() && combos <= self.checker.options.domain_cap {
                let mut assignment = vec![0usize; vars.len()];
                'combos: loop {
                    let mut sigma = Subst::new();
                    for (v, &i) in vars.iter().zip(&assignment) {
                        sigma.bind(*v, uniform_logic::Term::Const(domain[i]));
                    }
                    let range_holds = {
                        let model = self.model();
                        let mut s = sigma.clone();
                        uniform_datalog::provable(model.as_ref(), &lits, &mut s)
                    };
                    if !range_holds {
                        let mut agenda: Vec<Rq> = lits
                            .iter()
                            .map(|l| Rq::Lit(sigma.apply_literal(l)))
                            .collect();
                        agenda.push(body.apply(&sigma));
                        let mark = self.mark();
                        if self.enforce_seq(&agenda, level, k) {
                            return true;
                        }
                        self.undo_to(mark);
                    }
                    // Advance the odometer.
                    for slot in assignment.iter_mut() {
                        *slot += 1;
                        if *slot < domain.len() {
                            continue 'combos;
                        }
                        *slot = 0;
                    }
                    break;
                }
            }
        }

        // Alternative 2 (§4): instantiate with new constants.
        if self.fresh_in_use + vars.len() <= self.budget {
            let mark = self.mark();
            let mut sigma = Subst::new();
            for &v in vars {
                let c = self.fresh.next();
                self.fresh_generated += 1;
                self.fresh_in_use += 1;
                self.trail.push(TrailOp::Fresh);
                sigma.bind(v, uniform_logic::Term::Const(c));
            }
            self.note(level, || {
                let names: Vec<&str> = vars
                    .iter()
                    .map(|v| sigma.walk(uniform_logic::Term::Var(*v)))
                    .map(|t| match t {
                        uniform_logic::Term::Const(c) => c.as_str(),
                        uniform_logic::Term::Var(v) => v.as_str(),
                    })
                    .collect();
                format!("new constant(s): {}", names.join(", "))
            });
            let mut agenda: Vec<Rq> = lits
                .iter()
                .map(|l| Rq::Lit(sigma.apply_literal(l)))
                .collect();
            agenda.push(body.apply(&sigma));
            if self.enforce_seq(&agenda, level, k) {
                return true;
            }
            self.undo_to(mark);
        } else {
            self.budget_hit = true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{normalize, parse_formula, parse_rule, Rule};

    fn checker(rules: &[&str], constraints: &[&str]) -> SatChecker {
        let rules = RuleSet::new(
            rules
                .iter()
                .map(|r| parse_rule(r).unwrap())
                .collect::<Vec<Rule>>(),
        )
        .unwrap();
        let cs: Vec<Constraint> = constraints
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Constraint::new(
                    format!("c{}", i + 1),
                    normalize(&parse_formula(s).unwrap()).unwrap(),
                )
            })
            .collect();
        SatChecker::new(rules, cs)
    }

    #[test]
    fn empty_constraint_set_trivially_satisfiable() {
        let rep = checker(&[], &[]).check();
        assert_eq!(
            rep.outcome,
            SatOutcome::Satisfiable {
                explicit: vec![],
                model: vec![]
            }
        );
    }

    #[test]
    fn universal_constraints_satisfied_by_empty_db() {
        // §4: "It is well possible that all constraints are already
        // satisfied in a database without facts… e.g., when all
        // constraints are functional or multi-valued dependencies."
        let rep = checker(
            &[],
            &[
                "forall X, Y, Z: leads(X,Y) & leads(Z,Y) -> same(X,Z)",
                "forall X: p(X) -> q(X)",
            ],
        )
        .check();
        assert!(rep.outcome.is_satisfiable());
        assert_eq!(rep.stats.assertions, 0);
    }

    #[test]
    fn single_existential_enforced() {
        let rep = checker(&[], &["exists X: employee(X)"]).check();
        match rep.outcome {
            SatOutcome::Satisfiable { explicit, .. } => {
                assert_eq!(explicit.len(), 1);
                assert_eq!(explicit[0].pred, Sym::new("employee"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn propositional_contradiction_unsat() {
        let rep = checker(&[], &["rain", "rain -> wet", "~wet"]).check();
        assert_eq!(rep.outcome, SatOutcome::Unsatisfiable);
    }

    #[test]
    fn propositional_disjunction_backtracks() {
        // a ∨ b, ¬a: must pick b after failing on a.
        let rep = checker(&[], &["a | b", "~a"]).check();
        match rep.outcome {
            SatOutcome::Satisfiable { explicit, .. } => {
                assert_eq!(explicit.len(), 1);
                assert_eq!(explicit[0].pred, Sym::new("b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn existential_reuse_finds_small_model() {
        // ∃X p(X); ∀X p(X) → ∃Y p(Y)∧r(X,Y). Finite model {p(c),r(c,c)}
        // requires reusing c for Y.
        let rep = checker(
            &[],
            &[
                "exists X: p(X)",
                "forall X: p(X) -> (exists Y: p(Y) & r(X,Y))",
            ],
        )
        .check();
        match &rep.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                assert!(model.len() <= 3, "expected a small model, got {model:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tableaux_baseline_diverges_where_reuse_terminates() {
        // Same problem, fresh-constants-only: every p(c) spawns a new
        // constant — the budget is exhausted and the result is Unknown
        // (§4 point 2: classical tableaux is incomplete for finite
        // satisfiability).
        let rep = checker(
            &[],
            &[
                "exists X: p(X)",
                "forall X: p(X) -> (exists Y: p(Y) & r(X,Y))",
            ],
        )
        .with_options(SatOptions {
            max_fresh_constants: 4,
            ..SatOptions::tableaux()
        })
        .check();
        assert!(
            matches!(rep.outcome, SatOutcome::Unknown { .. }),
            "{:?}",
            rep.outcome
        );
    }

    #[test]
    fn axiom_of_infinity_reports_unknown() {
        // Strict order with a successor for every element: only infinite
        // models.
        let rep = checker(
            &[],
            &[
                "exists X: elem(X)",
                "forall X: elem(X) -> (exists Y: elem(Y) & succ(X,Y))",
                "forall X, Y: succ(X,Y) -> less(X,Y)",
                "forall X, Y, Z: less(X,Y) & less(Y,Z) -> less(X,Z)",
                "forall X: less(X,X) -> false",
            ],
        )
        .with_options(SatOptions {
            max_fresh_constants: 5,
            ..SatOptions::default()
        })
        .check();
        assert!(
            matches!(rep.outcome, SatOutcome::Unknown { .. }),
            "{:?}",
            rep.outcome
        );
    }

    #[test]
    fn rules_participate_in_derivation() {
        // member derivable via leads: enforcing "some member" can be
        // satisfied through the rule after asserting leads.
        let rep = checker(
            &["member(X,Y) :- leads(X,Y)."],
            &[
                "exists X, Y: leads(X,Y)",
                "forall X, Y: leads(X,Y) -> member(X,Y)",
            ],
        )
        .check();
        assert!(rep.outcome.is_satisfiable(), "{:?}", rep.outcome);
    }

    #[test]
    fn completion_constraint_enables_model() {
        // Rule p(X) ← d(X) ∧ ¬q(X), constraints ∃X d(X) and ∀X ¬p(X).
        // Without the completion constraint the procedure would assert
        // d(c) and fail on derived p(c) with no alternative; the
        // completion ∀X ¬d(X)∨q(X)∨p(X) exposes the q(c) branch.
        let rep = checker(
            &["p(X) :- d(X), not q(X)."],
            &["exists X: d(X)", "forall X: p(X) -> false"],
        )
        .check();
        match &rep.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                let names: Vec<String> = model.iter().map(|f| f.to_string()).collect();
                assert!(
                    names.iter().any(|n| n.starts_with("q(")),
                    "model: {names:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn graph_coloring_satisfiable() {
        // Two adjacent nodes, two colors: ∀ node has a color, adjacent
        // nodes differ. Finite model generation with case analysis.
        let rep = checker(
            &[],
            &[
                "node(n1) & node(n2) & adj(n1,n2)",
                "forall X: node(X) -> color(X, red) | color(X, green)",
                "forall X, Y, C: adj(X,Y) & color(X,C) & color(Y,C) -> false",
            ],
        )
        .check();
        assert!(rep.outcome.is_satisfiable(), "{:?}", rep.outcome);
    }

    #[test]
    fn uncolorable_graph_unsat() {
        // Triangle with two colors: unsatisfiable.
        let rep = checker(
            &[],
            &[
                "node(n1) & node(n2) & node(n3) & adj(n1,n2) & adj(n2,n3) & adj(n1,n3)",
                "forall X: node(X) -> color(X, red) | color(X, green)",
                "forall X, Y, C: adj(X,Y) & color(X,C) & color(Y,C) -> false",
            ],
        )
        .check();
        assert_eq!(rep.outcome, SatOutcomeKind::unsat(), "{:?}", rep.outcome);
    }

    // Small helper so the assert above reads naturally.
    struct SatOutcomeKind;
    impl SatOutcomeKind {
        fn unsat() -> SatOutcome {
            SatOutcome::Unsatisfiable
        }
    }

    #[test]
    fn seeded_search_extends_existing_facts() {
        let rep = checker(&[], &["forall X: p(X) -> q(X)"])
            .with_seed(vec![Fact::parse_like("p", &["a"])])
            .check();
        match &rep.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                assert!(model.contains(&Fact::parse_like("q", &["a"])));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incremental_and_full_checking_agree() {
        let problems: Vec<(&[&str], &[&str])> = vec![
            (&[], &["exists X: p(X)", "forall X: p(X) -> q(X)"]),
            (&[], &["rain", "rain -> wet", "~wet"]),
            (
                &["member(X,Y) :- leads(X,Y)."],
                &[
                    "exists X, Y: leads(X,Y)",
                    "forall X, Y: member(X,Y) -> good(X)",
                ],
            ),
        ];
        for (rules, cs) in problems {
            let inc = checker(rules, cs).check();
            let full = checker(rules, cs)
                .with_options(SatOptions {
                    incremental_checking: false,
                    ..SatOptions::default()
                })
                .check();
            assert_eq!(
                inc.outcome.is_satisfiable(),
                full.outcome.is_satisfiable(),
                "divergence on {cs:?}"
            );
        }
    }

    #[test]
    fn trace_records_assertions() {
        let rep = checker(&[], &["exists X: employee(X)"])
            .with_options(SatOptions {
                trace: true,
                ..SatOptions::default()
            })
            .check();
        assert!(
            rep.trace.iter().any(|l| l.contains("assert employee(")),
            "{:?}",
            rep.trace
        );
    }
}
