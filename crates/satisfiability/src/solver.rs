//! A bundled propositional CDCL solver behind a pluggable [`Solver`]
//! trait.
//!
//! PR 4's repair engine enumerates subset-minimal repairs by bounded
//! enforcement search — exhaustive but exponential in the violation
//! count. The CAvSAT line of work (Dixit & Kolaitis, PAPERS.md) shows
//! the scalable formulation: encode the repair space as clauses and
//! drive enumeration by repeated SAT calls. This module supplies the
//! propositional core for that reduction: a [`Cnf`] builder, a
//! [`Solver`] trait with incremental assumptions and conflict budgets,
//! a deterministic conflict-driven clause-learning implementation
//! ([`CdclSolver`]: two-watched-literal propagation, first-UIP clause
//! learning, VSIDS-lite decision ordering, Luby restarts, false-first
//! phase saving), and a [`SanityCheckingSolver`] wrapper that
//! re-verifies every model — and, on small instances, every UNSAT
//! verdict — against the clause set in debug builds.
//!
//! The solver is bundled in-repo, mirroring the shim discipline
//! (`crates/shims/`): no registry access is available, so there is no
//! external SAT dependency to bind to. Everything here is fully
//! deterministic — ties in the decision order break toward the lowest
//! variable index, and no randomization or wall-clock input exists —
//! so repair enumeration stays digest-stable across thread counts and
//! processes (`tests/determinism.rs`).

use std::fmt;

/// A propositional literal: variable index plus sign, packed into one
/// word (`2·var` positive, `2·var + 1` negated).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// The negated literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit(var << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Is this the positive literal?
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index for watch lists (`2·var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "!x{}", self.var())
        }
    }
}

/// A formula in conjunctive normal form, grown monotonically: callers
/// mint variables with [`Cnf::fresh_var`] and append clauses with
/// [`Cnf::add_clause`]. Tautological clauses are dropped and duplicate
/// literals merged at insertion, so the stored clause set is exactly
/// what the solver loads.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Mint a fresh variable and return its index.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Append a clause (a disjunction of literals). An empty clause
    /// makes the formula unsatisfiable; a tautology is dropped.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort();
        clause.dedup();
        // Positive and negative literals of one variable sort adjacent,
        // so a single windows pass detects tautologies.
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        self.clauses.push(clause);
    }

    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

/// A total assignment over the formula's variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    pub fn value(&self, var: u32) -> bool {
        self.values[var as usize]
    }

    pub fn lit_true(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_pos()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Outcome of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A model of the clauses (and assumptions, if any).
    Sat(Assignment),
    /// No model exists under the given assumptions.
    Unsat,
}

/// Cumulative search-effort counters of a solver instance. Everything
/// here is deterministic and folded into the determinism digests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    pub decisions: u64,
    pub propagations: u64,
    pub conflicts: u64,
    pub learned: u64,
    pub restarts: u64,
}

/// A pluggable SAT backend. Implementations may keep learned state
/// across calls as long as the caller only *adds* clauses to the same
/// [`Cnf`] between calls (learned clauses are consequences of the
/// clause set alone, so they stay valid under monotone growth); a call
/// with a shrunk clause list resets the solver.
pub trait Solver {
    /// Solve under `assumptions`, giving up after `max_conflicts`
    /// conflicts when a budget is given. `None` means the budget ran
    /// out before a verdict.
    fn solve_limited(
        &mut self,
        cnf: &Cnf,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
    ) -> Option<SolveResult>;

    /// Solve under `assumptions` with no conflict budget.
    fn solve_with_assumptions(&mut self, cnf: &Cnf, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(cnf, assumptions, None)
            .expect("unbudgeted solve cannot run out")
    }

    /// Solve the bare formula.
    fn solve(&mut self, cnf: &Cnf) -> SolveResult {
        self.solve_with_assumptions(cnf, &[])
    }

    /// Cumulative effort counters.
    fn stats(&self) -> SolverStats;
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    Undef,
    True,
    False,
}

/// The `i`-th term (1-based) of the Luby restart sequence
/// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

const RESTART_UNIT: u64 = 64;
const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

/// The bundled conflict-driven clause-learning solver. Deterministic by
/// construction: decisions follow VSIDS-lite activity with ties broken
/// toward the lowest variable index, phases default to `false` (which
/// biases repair models toward small change sets), and restarts follow
/// the Luby sequence.
///
/// An instance is tied to one monotonically growing [`Cnf`]: each call
/// loads the clauses appended since the last call and keeps its learned
/// clauses. Passing a formula with *fewer* clauses than previously seen
/// resets the instance wholesale.
pub struct CdclSolver {
    num_vars: usize,
    /// Problem clauses (prefix) followed by learned clauses.
    clauses: Vec<Vec<Lit>>,
    /// How many of the caller's clauses have been loaded.
    loaded: usize,
    /// Clause indices watched per literal index.
    watches: Vec<Vec<usize>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    reason: Vec<Option<usize>>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    seen: Vec<bool>,
    stats: SolverStats,
    /// A level-0 contradiction was derived: the formula is permanently
    /// unsatisfiable (monotone growth cannot undo it).
    unsat: bool,
}

impl Default for CdclSolver {
    fn default() -> CdclSolver {
        CdclSolver::new()
    }
}

impl CdclSolver {
    pub fn new() -> CdclSolver {
        CdclSolver {
            num_vars: 0,
            clauses: Vec::new(),
            loaded: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            seen: Vec::new(),
            stats: SolverStats::default(),
            unsat: false,
        }
    }

    fn reset(&mut self) {
        let stats = self.stats;
        *self = CdclSolver::new();
        self.stats = stats;
    }

    fn grow_to(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        self.num_vars = num_vars;
        self.watches.resize(2 * num_vars, Vec::new());
        self.assigns.resize(num_vars, LBool::Undef);
        self.phase.resize(num_vars, false);
        self.reason.resize(num_vars, None);
        self.level.resize(num_vars, 0);
        self.activity.resize(num_vars, 0.0);
        self.seen.resize(num_vars, false);
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assigns[v], LBool::Undef);
        self.assigns[v] = if l.is_pos() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v] = l.is_pos();
        self.reason[v] = reason;
        self.level[v] = self.decision_level() as u32;
        self.trail.push(l);
    }

    /// Load clauses appended to the caller's formula since the last
    /// call. Runs at decision level 0, so any falsified literal seen
    /// here is permanently false.
    fn sync(&mut self, cnf: &Cnf) {
        if cnf.num_clauses() < self.loaded {
            self.reset();
        }
        self.grow_to(cnf.num_vars() as usize);
        debug_assert_eq!(self.decision_level(), 0);
        for clause in &cnf.clauses()[self.loaded..] {
            self.attach(clause.clone());
        }
        self.loaded = cnf.num_clauses();
    }

    /// Attach a clause at decision level 0, choosing watches that are
    /// not yet false. Unit clauses are enqueued rather than stored; an
    /// all-false clause marks the formula unsatisfiable.
    fn attach(&mut self, mut clause: Vec<Lit>) {
        // Move non-false literals to the front.
        let mut front = 0;
        for k in 0..clause.len() {
            if front >= 2 {
                break;
            }
            if self.lit_value(clause[k]) != LBool::False {
                clause.swap(front, k);
                front += 1;
            }
        }
        match front {
            0 => self.unsat = true,
            1 => {
                if self.lit_value(clause[0]) == LBool::Undef {
                    self.enqueue(clause[0], None);
                }
            }
            _ => {
                let ci = self.clauses.len();
                self.watches[clause[0].index()].push(ci);
                self.watches[clause[1].index()].push(ci);
                self.clauses.push(clause);
            }
        }
    }

    /// Two-watched-literal unit propagation. Returns a conflicting
    /// clause index, or `None` at fixpoint.
    fn propagate(&mut self) -> Option<usize> {
        let mut conflict = None;
        while conflict.is_none() && self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let not_p = !p;
            let watch_idx = not_p.index();
            let ws = std::mem::take(&mut self.watches[watch_idx]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut it = ws.into_iter();
            'clauses: for ci in it.by_ref() {
                if self.clauses[ci][0] == not_p {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], not_p);
                let first = self.clauses[ci][0];
                if self.lit_value(first) == LBool::True {
                    keep.push(ci);
                    continue;
                }
                for k in 2..self.clauses[ci].len() {
                    let lk = self.clauses[ci][k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[ci].swap(1, k);
                        self.watches[lk.index()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement watch: the clause is unit or false.
                keep.push(ci);
                if self.lit_value(first) == LBool::False {
                    conflict = Some(ci);
                    break;
                }
                self.enqueue(first, Some(ci));
            }
            keep.extend(it);
            self.watches[watch_idx] = keep;
        }
        if conflict.is_some() {
            // Flush the queue; analysis restarts propagation anyway.
            self.prop_head = self.trail.len();
        }
        conflict
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= ACTIVITY_DECAY;
    }

    /// First-UIP conflict analysis: returns the learned clause (the
    /// asserting literal first, a literal of the backjump level second)
    /// and the level to backtrack to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot 0: asserting literal
        let mut counter = 0usize;
        let mut confl = conflict;
        let mut skip_first = false;
        let mut idx = self.trail.len();
        let p;
        loop {
            let start = usize::from(skip_first);
            for k in start..self.clauses[confl].len() {
                let q = self.clauses[confl][k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked trail literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let l = self.trail[idx];
            self.seen[l.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = l;
                break;
            }
            confl = self.reason[l.var() as usize].expect("non-UIP trail literal has a reason");
            skip_first = true; // position 0 of a reason clause is the implied literal
        }
        learnt[0] = !p;
        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backjump to the second-highest level in the clause.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_k = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var() as usize] > self.level[learnt[max_k].var() as usize] {
                    max_k = k;
                }
            }
            learnt.swap(1, max_k);
            self.level[learnt[1].var() as usize] as usize
        };
        (learnt, backtrack)
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail underflow");
            let v = l.var() as usize;
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
        }
        self.trail_lim.truncate(target);
        self.prop_head = self.trail.len();
    }

    /// Record a learned clause after backjumping: enqueue the asserting
    /// literal with the clause as its reason.
    fn record_learned(&mut self, learnt: Vec<Lit>) {
        self.stats.learned += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
        } else {
            let ci = self.clauses.len();
            self.watches[learnt[0].index()].push(ci);
            self.watches[learnt[1].index()].push(ci);
            let asserting = learnt[0];
            self.clauses.push(learnt);
            self.enqueue(asserting, Some(ci));
        }
    }

    /// Highest-activity unassigned variable, ties toward the lowest
    /// index; `None` when the assignment is total.
    fn pick_branch_var(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.assigns[v] == LBool::Undef {
                match best {
                    None => best = Some(v),
                    Some(b) => {
                        if self.activity[v] > self.activity[b] {
                            best = Some(v);
                        }
                    }
                }
            }
        }
        best
    }

    fn extract(&self, num_vars: u32) -> Assignment {
        let values = (0..num_vars as usize)
            .map(|v| self.assigns[v] == LBool::True)
            .collect();
        Assignment { values }
    }
}

impl Solver for CdclSolver {
    fn solve_limited(
        &mut self,
        cnf: &Cnf,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
    ) -> Option<SolveResult> {
        self.sync(cnf);
        if self.unsat {
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return Some(SolveResult::Unsat);
        }
        let mut conflicts_here: u64 = 0;
        let mut since_restart: u64 = 0;
        let mut restart_seq: u64 = 1;
        let mut restart_limit = RESTART_UNIT * luby(restart_seq);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backtrack) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learned(learnt);
                self.decay();
                if let Some(max) = max_conflicts {
                    if conflicts_here >= max {
                        self.cancel_until(0);
                        return None;
                    }
                }
            } else {
                if since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    since_restart = 0;
                    restart_seq += 1;
                    restart_limit = RESTART_UNIT * luby(restart_seq);
                    self.cancel_until(0);
                    continue;
                }
                // Re-establish assumptions as forced decisions, then
                // branch freely.
                let mut next_assumption = None;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::False => {
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next_assumption = Some(p);
                            break;
                        }
                    }
                }
                if let Some(p) = next_assumption {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(p, None);
                } else {
                    match self.pick_branch_var() {
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = if self.phase[v] {
                                Lit::pos(v as u32)
                            } else {
                                Lit::neg(v as u32)
                            };
                            self.enqueue(lit, None);
                        }
                        None => {
                            let assignment = self.extract(cnf.num_vars());
                            self.cancel_until(0);
                            return Some(SolveResult::Sat(assignment));
                        }
                    }
                }
            }
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }
}

/// Does `assignment` satisfy every clause of `cnf` and every literal of
/// `assumptions`?
pub fn satisfies(cnf: &Cnf, assumptions: &[Lit], assignment: &Assignment) -> bool {
    assumptions.iter().all(|&l| assignment.lit_true(l))
        && cnf
            .clauses()
            .iter()
            .all(|c| c.iter().any(|&l| assignment.lit_true(l)))
}

/// Variable-count ceiling for the exhaustive UNSAT cross-check in
/// [`SanityCheckingSolver`] (2^12 candidate assignments).
const EXHAUSTIVE_CHECK_VARS: u32 = 12;

/// A wrapper that re-verifies solver verdicts in debug builds: every
/// model is checked against the clause set and assumptions, and UNSAT
/// verdicts on instances of at most `EXHAUSTIVE_CHECK_VARS` variables
/// are cross-checked by exhaustive enumeration. Release builds pass
/// through untouched.
pub struct SanityCheckingSolver<S> {
    inner: S,
}

impl<S: Solver> SanityCheckingSolver<S> {
    pub fn new(inner: S) -> SanityCheckingSolver<S> {
        SanityCheckingSolver { inner }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl Default for SanityCheckingSolver<CdclSolver> {
    fn default() -> Self {
        SanityCheckingSolver::new(CdclSolver::new())
    }
}

impl<S: Solver> Solver for SanityCheckingSolver<S> {
    fn solve_limited(
        &mut self,
        cnf: &Cnf,
        assumptions: &[Lit],
        max_conflicts: Option<u64>,
    ) -> Option<SolveResult> {
        let result = self.inner.solve_limited(cnf, assumptions, max_conflicts);
        if cfg!(debug_assertions) {
            match &result {
                Some(SolveResult::Sat(assignment)) => {
                    assert_eq!(assignment.len(), cnf.num_vars() as usize);
                    assert!(
                        satisfies(cnf, assumptions, assignment),
                        "solver returned a non-model"
                    );
                }
                Some(SolveResult::Unsat) if cnf.num_vars() <= EXHAUSTIVE_CHECK_VARS => {
                    let n = cnf.num_vars();
                    for bits in 0u64..(1u64 << n) {
                        let assignment = Assignment {
                            values: (0..n).map(|v| bits >> v & 1 == 1).collect(),
                        };
                        assert!(
                            !satisfies(cnf, assumptions, &assignment),
                            "solver claimed UNSAT but {assignment:?} is a model"
                        );
                    }
                }
                _ => {}
            }
        }
        result
    }

    fn stats(&self) -> SolverStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> SanityCheckingSolver<CdclSolver> {
        SanityCheckingSolver::default()
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        assert!(matches!(solver().solve(&cnf), SolveResult::Sat(_)));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert_eq!(solver().solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn unit_contradiction_is_unsat() {
        let mut cnf = Cnf::new();
        let x = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x)]);
        cnf.add_clause([Lit::neg(x)]);
        assert_eq!(solver().solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new();
        let x = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x), Lit::neg(x)]);
        assert_eq!(cnf.num_clauses(), 0);
        cnf.add_clause([Lit::pos(x), Lit::pos(x)]);
        assert_eq!(cnf.clauses()[0].len(), 1);
    }

    #[test]
    fn simple_implication_chain_propagates() {
        // x0 & (x0 -> x1) & (x1 -> x2): model must set all three.
        let mut cnf = Cnf::new();
        let x0 = cnf.fresh_var();
        let x1 = cnf.fresh_var();
        let x2 = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x0)]);
        cnf.add_clause([Lit::neg(x0), Lit::pos(x1)]);
        cnf.add_clause([Lit::neg(x1), Lit::pos(x2)]);
        match solver().solve(&cnf) {
            SolveResult::Sat(a) => {
                assert!(a.value(x0) && a.value(x1) && a.value(x2));
            }
            SolveResult::Unsat => panic!("chain is satisfiable"),
        }
    }

    #[test]
    fn phase_default_biases_toward_false() {
        // A free variable with no constraints stays false: the repair
        // encoding relies on this to find small change sets quickly.
        let mut cnf = Cnf::new();
        let x = cnf.fresh_var();
        let y = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
        match solver().solve(&cnf) {
            SolveResult::Sat(a) => {
                assert!(!(a.value(x) && a.value(y)), "only one should flip true");
            }
            SolveResult::Unsat => panic!("satisfiable"),
        }
    }

    fn pigeonhole_cnf(holes: u32) -> Cnf {
        // holes+1 pigeons into `holes` holes: unsatisfiable.
        let mut cnf = Cnf::new();
        let var = |p: u32, h: u32| p * holes + h;
        for _ in 0..(holes + 1) * holes {
            cnf.fresh_var();
        }
        for p in 0..=holes {
            cnf.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..=holes {
                for p2 in (p1 + 1)..=holes {
                    cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_refuted() {
        for holes in 2..=5 {
            let cnf = pigeonhole_cnf(holes);
            let mut s = solver();
            assert_eq!(s.solve(&cnf), SolveResult::Unsat, "php({holes})");
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn assumptions_flip_verdicts_incrementally() {
        let mut cnf = Cnf::new();
        let x = cnf.fresh_var();
        let y = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x), Lit::pos(y)]);
        let mut s = solver();
        // Assuming both false contradicts the clause …
        assert_eq!(
            s.solve_with_assumptions(&cnf, &[Lit::neg(x), Lit::neg(y)]),
            SolveResult::Unsat
        );
        // … but the formula itself stays satisfiable on the same instance.
        match s.solve_with_assumptions(&cnf, &[Lit::neg(x)]) {
            SolveResult::Sat(a) => assert!(!a.value(x) && a.value(y)),
            SolveResult::Unsat => panic!("satisfiable under !x"),
        }
        match s.solve(&cnf) {
            SolveResult::Sat(_) => {}
            SolveResult::Unsat => panic!("satisfiable outright"),
        }
    }

    #[test]
    fn monotone_clause_additions_reuse_the_instance() {
        let mut cnf = Cnf::new();
        let vars: Vec<u32> = (0..6).map(|_| cnf.fresh_var()).collect();
        cnf.add_clause(vars.iter().map(|&v| Lit::pos(v)));
        let mut s = solver();
        // Block each returned model until the formula runs dry.
        let mut models = 0;
        while let SolveResult::Sat(a) = s.solve(&cnf) {
            models += 1;
            cnf.add_clause(vars.iter().map(
                |&v| {
                    if a.value(v) {
                        Lit::neg(v)
                    } else {
                        Lit::pos(v)
                    }
                },
            ));
            assert!(models <= 64, "2^6 models at most");
        }
        assert_eq!(models, 63, "all assignments except all-false");
    }

    #[test]
    fn conflict_budget_reports_exhaustion() {
        let cnf = pigeonhole_cnf(6);
        let mut s = CdclSolver::new();
        match s.solve_limited(&cnf, &[], Some(1)) {
            None => {}
            Some(SolveResult::Unsat) => {
                panic!("php(6) cannot be refuted within one conflict")
            }
            Some(SolveResult::Sat(_)) => panic!("php(6) is unsatisfiable"),
        }
        // An unbudgeted retry on the same instance still concludes.
        assert_eq!(s.solve(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn shrunk_formula_resets_the_instance() {
        let mut cnf = Cnf::new();
        let x = cnf.fresh_var();
        cnf.add_clause([Lit::pos(x)]);
        cnf.add_clause([Lit::neg(x)]);
        let mut s = solver();
        assert_eq!(s.solve(&cnf), SolveResult::Unsat);
        let mut fresh = Cnf::new();
        let y = fresh.fresh_var();
        fresh.add_clause([Lit::pos(y)]);
        match s.solve(&fresh) {
            SolveResult::Sat(a) => assert!(a.value(y)),
            SolveResult::Unsat => panic!("fresh formula is satisfiable"),
        }
    }

    #[test]
    fn solver_is_deterministic() {
        let run = || {
            let mut s = CdclSolver::new();
            let cnf = pigeonhole_cnf(5);
            let verdict = s.solve(&cnf);
            (verdict, s.stats())
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
    }
}
