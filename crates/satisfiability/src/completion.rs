//! The rule-completion transform of §4.
//!
//! "For completeness reasons we have to assume that for every rule with
//! negative literals in its body an additional constraint has been
//! introduced: For every rule `H ← A₁∧…∧Aₙ∧¬B₁∧…∧¬Bₘ` involving free
//! variables X₁…Xₖ a constraint `∀X₁…Xₖ [¬A₁∨…∨¬Aₙ∨B₁∨…∨Bₘ∨H]` has to be
//! added. Without this addition certain alternatives that exist for
//! reaching a finite model of the constraint set would never be
//! exploited."
//!
//! The generated formula is built directly in restricted-quantification
//! form: rule range-restriction guarantees the positive body atoms cover
//! all variables.

use uniform_logic::{Constraint, Rq, Rule, Sym};

/// The completion constraint of a rule, or `None` if the rule has no
/// negative body literal (no constraint needed).
pub fn completion_constraint(rule: &Rule, name: String) -> Option<Constraint> {
    let negatives: Vec<_> = rule.negative_body().cloned().collect();
    if negatives.is_empty() {
        return None;
    }
    let range: Vec<_> = rule.positive_body().map(|l| l.atom.clone()).collect();
    let vars: Vec<Sym> = rule.vars().into_iter().collect();
    let mut disjuncts: Vec<Rq> = negatives
        .into_iter()
        .map(|l| Rq::Lit(l.complement()))
        .collect();
    disjuncts.push(Rq::Lit(rule.head.clone().pos()));
    let rq = Rq::forall_node(vars, range, Rq::or(disjuncts));
    Some(Constraint::new(name, rq))
}

/// Completion constraints for a whole rule set, named `completion(<head>)#i`.
pub fn completion_constraints(rules: &[Rule]) -> Vec<Constraint> {
    rules
        .iter()
        .enumerate()
        .filter_map(|(i, r)| completion_constraint(r, format!("completion({})#{}", r.head.pred, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_rule;

    #[test]
    fn positive_rules_need_no_completion() {
        let r = parse_rule("member(X,Y) :- leads(X,Y).").unwrap();
        assert!(completion_constraint(&r, "x".into()).is_none());
    }

    #[test]
    fn negative_rule_completed() {
        let r = parse_rule("present(X) :- emp(X), not absent(X).").unwrap();
        let c = completion_constraint(&r, "comp".into()).unwrap();
        // ∀X [¬emp(X) ∨ absent(X) ∨ present(X)]
        match &c.rq {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 1);
                assert_eq!(range.len(), 1);
                assert_eq!(range[0].pred, Sym::new("emp"));
                match &**body {
                    Rq::Or(parts) => {
                        let rendered: Vec<String> = parts.iter().map(|p| format!("{p}")).collect();
                        assert_eq!(rendered, vec!["absent(X)", "present(X)"]);
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_negatives_all_appear() {
        let r = parse_rule("ok(X) :- item(X), not broken(X), not lost(X).").unwrap();
        let c = completion_constraint(&r, "comp".into()).unwrap();
        match &c.rq {
            Rq::Forall { body, .. } => match &**body {
                Rq::Or(parts) => assert_eq!(parts.len(), 3),
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_generation_names_and_filters() {
        let rules = vec![
            parse_rule("a(X) :- b(X).").unwrap(),
            parse_rule("c(X) :- d(X), not e(X).").unwrap(),
        ];
        let cs = completion_constraints(&rules);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].name.starts_with("completion(c)"));
    }
}
