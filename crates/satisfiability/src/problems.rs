//! Problem library: the paper's §5 worked example and benchmark problems
//! from the theorem-proving literature (§6 reports "promising efficiency
//! … on well-known benchmark examples from the theorem-proving
//! literature"; the companion SATCHMO paper used Schubert's steamroller
//! and similar model-generation benchmarks).

use crate::search::{SatChecker, SatOptions};
use uniform_datalog::RuleSet;
use uniform_logic::{normalize, parse_formula, parse_rule, Constraint, Rule};

/// Expected outcome of a problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// A finite model exists.
    Satisfiable,
    /// No model at all.
    Unsatisfiable,
    /// All models are infinite: the checker must give up (Unknown).
    Infinite,
}

/// A named rules-plus-constraints problem.
#[derive(Clone, Debug)]
pub struct Problem {
    pub name: &'static str,
    pub rules: Vec<Rule>,
    pub constraints: Vec<Constraint>,
    pub expected: Expectation,
    /// Fresh-constant ceiling adequate for the problem.
    pub budget: usize,
}

impl Problem {
    fn build(
        name: &'static str,
        rules: &[&str],
        constraints: &[&str],
        expected: Expectation,
        budget: usize,
    ) -> Problem {
        Problem {
            name,
            rules: rules.iter().map(|r| parse_rule(r).expect(r)).collect(),
            constraints: constraints
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    Constraint::new(
                        format!("{name}#{}", i + 1),
                        normalize(&parse_formula(c).expect(c)).expect(c),
                    )
                })
                .collect(),
            expected,
            budget,
        }
    }

    /// A checker for this problem with an adequate budget.
    pub fn checker(&self) -> SatChecker {
        self.checker_with(SatOptions::default())
    }

    pub fn checker_with(&self, options: SatOptions) -> SatChecker {
        let rules = RuleSet::new(self.rules.clone()).expect("problem rules stratified");
        SatChecker::new(rules, self.constraints.clone()).with_options(SatOptions {
            max_fresh_constants: self.budget,
            ..options
        })
    }
}

/// §5 of the paper, exactly as printed. Unsatisfiable: every attempt to
/// lead a department ends in `subordinate(x,x)`.
pub fn paper_example() -> Problem {
    Problem::build(
        "paper-example",
        &["member(X,Y) :- leads(X,Y)."],
        &[
            "forall X: employee(X) -> (exists Y: department(Y) & member(X,Y))",
            "forall X: department(X) -> (exists Y: employee(Y) & leads(Y,X))",
            "forall X, Y: member(X,Y) -> (forall Z: leads(Z,Y) -> subordinate(X,Z))",
            "forall X: ~subordinate(X,X)",
            "exists X: employee(X)",
        ],
        Expectation::Unsatisfiable,
        4,
    )
}

/// The repair suggested at the end of §5: weaken constraint (3) to
/// `∀XY ¬member(X,Y) ∨ leads(X,Y) ∨ ∀Z(…)` — leaders are exempt from the
/// subordination requirement. Finitely satisfiable.
pub fn paper_example_repaired() -> Problem {
    Problem::build(
        "paper-example-repaired",
        &["member(X,Y) :- leads(X,Y)."],
        &[
            "forall X: employee(X) -> (exists Y: department(Y) & member(X,Y))",
            "forall X: department(X) -> (exists Y: employee(Y) & leads(Y,X))",
            "forall X, Y: member(X,Y) -> leads(X,Y) | (forall Z: leads(Z,Y) -> subordinate(X,Z))",
            "forall X: ~subordinate(X,X)",
            "exists X: employee(X)",
        ],
        Expectation::Satisfiable,
        4,
    )
}

/// Schubert's steamroller (Pelletier 47), the canonical 1980s
/// model-generation benchmark, in its function-free formulation with
/// named individuals. The axioms plus the *negated* conclusion are
/// unsatisfiable.
pub fn steamroller() -> Problem {
    Problem::build(
        "steamroller",
        &[],
        &[
            // The individuals.
            "wolf(w) & fox(f) & bird(b) & caterpillar(ca) & snail(sn) & grain(g)",
            // Taxonomy.
            "forall X: wolf(X) -> animal(X)",
            "forall X: fox(X) -> animal(X)",
            "forall X: bird(X) -> animal(X)",
            "forall X: caterpillar(X) -> animal(X)",
            "forall X: snail(X) -> animal(X)",
            "forall X: grain(X) -> plant(X)",
            // Size axioms.
            "forall X, Y: caterpillar(X) & bird(Y) -> smaller(X,Y)",
            "forall X, Y: snail(X) & bird(Y) -> smaller(X,Y)",
            "forall X, Y: bird(X) & fox(Y) -> smaller(X,Y)",
            "forall X, Y: fox(X) & wolf(Y) -> smaller(X,Y)",
            // Dietary facts.
            "forall X, Y: wolf(X) & fox(Y) -> ~eats(X,Y)",
            "forall X, Y: wolf(X) & grain(Y) -> ~eats(X,Y)",
            "forall X, Y: bird(X) & caterpillar(Y) -> eats(X,Y)",
            "forall X, Y: bird(X) & snail(Y) -> ~eats(X,Y)",
            "forall X: caterpillar(X) -> (exists P: plant(P) & eats(X,P))",
            "forall X: snail(X) -> (exists P: plant(P) & eats(X,P))",
            // The key axiom: every animal eats all plants or eats all
            // much-smaller plant-eating animals.
            "forall A: animal(A) -> (forall P: plant(P) -> eats(A,P)) | \
             (forall B: animal(B) & smaller(B,A) & (exists P2: plant(P2) & eats(B,P2)) -> eats(A,B))",
            // Negated conclusion: no animal eats a grain-eating animal.
            "forall A, B, G: animal(A) & animal(B) & grain(G) & eats(B,G) -> ~eats(A,B)",
        ],
        Expectation::Unsatisfiable,
        3,
    )
}

/// Pigeonhole principle: `n+1` pigeons into `n` holes, unsatisfiable.
/// Classic propositional refutation benchmark; sizes 2 and 3 are used in
/// the suite.
pub fn pigeonhole(n: usize) -> Problem {
    let mut constraints: Vec<String> = Vec::new();
    // Every pigeon is in some hole.
    for p in 0..=n {
        let alts: Vec<String> = (0..n).map(|h| format!("in(p{p}, h{h})")).collect();
        constraints.push(alts.join(" | "));
    }
    // No two pigeons share a hole.
    for p1 in 0..=n {
        for p2 in (p1 + 1)..=n {
            for h in 0..n {
                constraints.push(format!("~(in(p{p1}, h{h}) & in(p{p2}, h{h}))"));
            }
        }
    }
    let leaked: Vec<&'static str> = constraints
        .into_iter()
        .map(|s| &*Box::leak(s.into_boxed_str()))
        .collect();
    let name: &'static str = Box::leak(format!("pigeonhole-{n}").into_boxed_str());
    Problem::build(name, &[], &leaked, Expectation::Unsatisfiable, 0)
}

/// Graph 3-coloring of a cycle of length `n` — always satisfiable with 3
/// colors, and a representative finite-model-generation workload with
/// heavy case analysis.
pub fn cycle_coloring(n: usize) -> Problem {
    let mut constraints: Vec<String> = Vec::new();
    let nodes: Vec<String> = (0..n).map(|i| format!("node(v{i})")).collect();
    constraints.push(nodes.join(" & "));
    let edges: Vec<String> = (0..n)
        .map(|i| format!("adj(v{i}, v{})", (i + 1) % n))
        .collect();
    constraints.push(edges.join(" & "));
    constraints.push("forall X: node(X) -> color(X, r) | color(X, g) | color(X, b)".to_string());
    constraints.push("forall X, Y, C: adj(X,Y) & color(X,C) & color(Y,C) -> false".to_string());
    let leaked: Vec<&'static str> = constraints
        .into_iter()
        .map(|s| &*Box::leak(s.into_boxed_str()))
        .collect();
    let name: &'static str = Box::leak(format!("cycle-3coloring-{n}").into_boxed_str());
    Problem::build(name, &[], &leaked, Expectation::Satisfiable, 0)
}

/// A functional-dependency / inclusion-dependency mix over an
/// employee–department schema; a small finite model exists.
pub fn dependency_mix() -> Problem {
    Problem::build(
        "dependency-mix",
        &[],
        &[
            // Inclusion dependencies.
            "forall X, Y: works_in(X,Y) -> dept(Y)",
            "forall X, Y: works_in(X,Y) -> emp(X)",
            // Key-style dependency via a same-value predicate.
            "forall X, Y, Z: works_in(X,Y) & works_in(X,Z) -> eq(Y,Z)",
            "forall X, Y: eq(X,Y) -> eq(Y,X)",
            // Totality.
            "forall X: emp(X) -> (exists Y: works_in(X,Y))",
            "exists X: emp(X)",
            // eq only relates departments here.
            "forall X, Y: eq(X,Y) -> dept(X)",
        ],
        Expectation::Satisfiable,
        3,
    )
}

/// An axiom of infinity: an irreflexive transitive successor chain. Only
/// infinite models; the checker must return Unknown (§4: both properties
/// are only semi-decidable — here the budget runs out instead of running
/// forever).
pub fn axiom_of_infinity() -> Problem {
    Problem::build(
        "axiom-of-infinity",
        &[],
        &[
            "exists X: elem(X)",
            "forall X: elem(X) -> (exists Y: elem(Y) & succ(X,Y))",
            "forall X, Y: succ(X,Y) -> less(X,Y)",
            "forall X, Y, Z: less(X,Y) & less(Y,Z) -> less(X,Z)",
            "forall X: less(X,X) -> false",
        ],
        Expectation::Infinite,
        4,
    )
}

/// The full run of propositional Pelletier problems 1–17, encoded as
/// satisfiability problems of the *negated* theorem — all unsatisfiable.
pub fn pelletier_propositional() -> Vec<Problem> {
    let negated_theorems: &[(&'static str, &'static str)] = &[
        // P1: (p → q) ↔ (¬q → ¬p)
        ("pelletier-1", "~((p -> q) <-> (~q -> ~p))"),
        // P2: ¬¬p ↔ p
        ("pelletier-2", "~(~ ~p <-> p)"),
        // P3: ¬(p → q) → (q → p)
        ("pelletier-3", "~(~(p -> q) -> (q -> p))"),
        // P4: (¬p → q) ↔ (¬q → p)
        ("pelletier-4", "~((~p -> q) <-> (~q -> p))"),
        // P5: ((p ∨ q) → (p ∨ r)) → (p ∨ (q → r))
        ("pelletier-5", "~(((p | q) -> (p | r)) -> (p | (q -> r)))"),
        // P6: tertium non datur
        ("pelletier-6", "~(p | ~p)"),
        // P7: p ∨ ¬¬¬p
        ("pelletier-7", "~(p | ~ ~ ~p)"),
        // P8: Peirce's law ((p → q) → p) → p
        ("pelletier-8", "~(((p -> q) -> p) -> p)"),
        // P9: ((p∨q) ∧ (¬p∨q) ∧ (p∨¬q)) → ¬(¬p∨¬q)
        (
            "pelletier-9",
            "~(((p | q) & (~p | q) & (p | ~q)) -> ~(~p | ~q))",
        ),
        // P10: with premises q→r, r→p∧q, p→q∨r: p ↔ q
        (
            "pelletier-10",
            "~(((q -> r) & (r -> (p & q)) & (p -> (q | r))) -> (p <-> q))",
        ),
        // P11: p ↔ p
        ("pelletier-11", "~(p <-> p)"),
        // P12: ((p ↔ q) ↔ r) ↔ (p ↔ (q ↔ r))
        ("pelletier-12", "~(((p <-> q) <-> r) <-> (p <-> (q <-> r)))"),
        // P13: ∨ distributes over ∧
        ("pelletier-13", "~((p | (q & r)) <-> ((p | q) & (p | r)))"),
        // P14: (p ↔ q) ↔ ((q ∨ ¬p) ∧ (¬q ∨ p))
        ("pelletier-14", "~((p <-> q) <-> ((q | ~p) & (~q | p)))"),
        // P15: (p → q) ↔ (¬p ∨ q)
        ("pelletier-15", "~((p -> q) <-> (~p | q))"),
        // P16: (p → q) ∨ (q → p)
        ("pelletier-16", "~((p -> q) | (q -> p))"),
        // P17: ((p ∧ (q → r)) → s) ↔ ((¬p ∨ q ∨ s) ∧ (¬p ∨ ¬r ∨ s))
        (
            "pelletier-17",
            "~(((p & (q -> r)) -> s) <-> ((~p | q | s) & (~p | ~r | s)))",
        ),
    ];
    negated_theorems
        .iter()
        .map(|(name, f)| Problem::build(name, &[], &[f], Expectation::Unsatisfiable, 0))
        .collect()
}

/// Latin-square existence of order `n`: an `n × n` grid over `n`
/// symbols, each row and column a permutation. Satisfiable for every
/// `n ≥ 1`; the case analysis grows steeply with `n` — a finite-model
/// workload in the spirit of the era's quasigroup benchmarks.
pub fn latin_square(n: usize) -> Problem {
    let mut constraints: Vec<String> = Vec::new();
    constraints.push(
        (0..n)
            .map(|i| format!("row(r{i})"))
            .collect::<Vec<_>>()
            .join(" & "),
    );
    constraints.push(
        (0..n)
            .map(|i| format!("col(c{i})"))
            .collect::<Vec<_>>()
            .join(" & "),
    );
    let mut diffs: Vec<String> = Vec::new();
    for kind in ["r", "c", "s"] {
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    diffs.push(format!("diff({kind}{i}, {kind}{j})"));
                }
            }
        }
    }
    if !diffs.is_empty() {
        constraints.push(diffs.join(" & "));
    }
    // Each cell holds at least one symbol …
    let symbols: Vec<String> = (0..n).map(|s| format!("entry(R, C, s{s})")).collect();
    constraints.push(format!(
        "forall R, C: row(R) & col(C) -> {}",
        symbols.join(" | ")
    ));
    // … and at most one; rows and columns never repeat a symbol.
    constraints
        .push("forall R, C, S, T: entry(R, C, S) & entry(R, C, T) & diff(S, T) -> false".into());
    constraints
        .push("forall R, C, D, S: entry(R, C, S) & entry(R, D, S) & diff(C, D) -> false".into());
    constraints
        .push("forall R, Q, C, S: entry(R, C, S) & entry(Q, C, S) & diff(R, Q) -> false".into());
    let leaked: Vec<&'static str> = constraints
        .into_iter()
        .map(|s| &*Box::leak(s.into_boxed_str()))
        .collect();
    let name: &'static str = Box::leak(format!("latin-square-{n}").into_boxed_str());
    Problem::build(name, &[], &leaked, Expectation::Satisfiable, 0)
}

/// `n`-queens as a constraint-satisfiability problem over named squares
/// (one disjunctive placement constraint per row; column and diagonal
/// attacks precomputed as facts, so the encoding is domain-closed
/// without equality axioms). Unsatisfiable for `n ∈ {2, 3}`,
/// satisfiable from `n = 4` — one generator exercising both outcomes.
pub fn queens(n: usize) -> Problem {
    let expected = if n == 1 || n >= 4 {
        Expectation::Satisfiable
    } else {
        Expectation::Unsatisfiable
    };
    let mut constraints: Vec<String> = Vec::new();
    // Row inequalities (for the shared-column constraint).
    let mut diffs: Vec<String> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                diffs.push(format!("diff(r{i}, r{j})"));
            }
        }
    }
    if !diffs.is_empty() {
        constraints.push(diffs.join(" & "));
    }
    // Diagonal attacks between distinct squares.
    let mut diag: Vec<String> = Vec::new();
    for r1 in 0..n {
        for c1 in 0..n {
            for r2 in 0..n {
                for c2 in 0..n {
                    if r1 != r2 && r1.abs_diff(r2) == c1.abs_diff(c2) {
                        diag.push(format!("dattack(r{r1}, c{c1}, r{r2}, c{c2})"));
                    }
                }
            }
        }
    }
    if !diag.is_empty() {
        constraints.push(diag.join(" & "));
    }
    // One queen somewhere in each row …
    for r in 0..n {
        let alts: Vec<String> = (0..n).map(|c| format!("queen(r{r}, c{c})")).collect();
        constraints.push(alts.join(" | "));
    }
    // … no shared columns, no diagonal attacks.
    constraints.push("forall R, Q, C: queen(R, C) & queen(Q, C) & diff(R, Q) -> false".into());
    constraints
        .push("forall R, C, Q, D: queen(R, C) & queen(Q, D) & dattack(R, C, Q, D) -> false".into());
    let leaked: Vec<&'static str> = constraints
        .into_iter()
        .map(|s| &*Box::leak(s.into_boxed_str()))
        .collect();
    let name: &'static str = Box::leak(format!("queens-{n}").into_boxed_str());
    Problem::build(name, &[], &leaked, expected, 0)
}

/// A database schema whose constraints admit no state at all: managers
/// must be employees, managers and employees are disjoint, and a manager
/// must exist. The kind of contradiction §4 exists to catch when a
/// constraint set is edited.
pub fn disjoint_hierarchy() -> Problem {
    Problem::build(
        "disjoint-hierarchy",
        &[],
        &[
            "forall X: manager(X) -> emp(X)",
            "forall X: manager(X) & emp(X) -> false",
            "exists X: manager(X)",
        ],
        Expectation::Unsatisfiable,
        1,
    )
}

/// A cyclic inclusion-dependency schema (persons ↔ households) with
/// totality on both sides; a two-fact model closes the cycle.
pub fn household_cycle() -> Problem {
    Problem::build(
        "household-cycle",
        &[],
        &[
            "forall X, Y: member_of(X, Y) -> person(X)",
            "forall X, Y: member_of(X, Y) -> household(Y)",
            "forall X: person(X) -> (exists Y: member_of(X, Y))",
            "forall Y: household(Y) -> (exists X: person(X) & head_of(X, Y))",
            "forall X, Y: head_of(X, Y) -> member_of(X, Y)",
            "exists X: person(X)",
        ],
        Expectation::Satisfiable,
        3,
    )
}

/// The whole suite (used by tests, benches and EXPERIMENTS.md).
pub fn suite() -> Vec<Problem> {
    let mut out = vec![
        paper_example(),
        paper_example_repaired(),
        steamroller(),
        pigeonhole(2),
        pigeonhole(3),
        cycle_coloring(3),
        cycle_coloring(4),
        dependency_mix(),
        disjoint_hierarchy(),
        household_cycle(),
        latin_square(2),
        latin_square(3),
        queens(3),
        queens(4),
        axiom_of_infinity(),
    ];
    out.extend(pelletier_propositional());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SatOutcome;

    fn outcome_matches(p: &Problem) -> Result<(), String> {
        let report = p.checker().check();
        let ok = match p.expected {
            Expectation::Satisfiable => report.outcome.is_satisfiable(),
            Expectation::Unsatisfiable => report.outcome == SatOutcome::Unsatisfiable,
            Expectation::Infinite => matches!(report.outcome, SatOutcome::Unknown { .. }),
        };
        if ok {
            Ok(())
        } else {
            Err(format!(
                "{}: expected {:?}, got {:?}",
                p.name, p.expected, report.outcome
            ))
        }
    }

    #[test]
    fn paper_example_is_unsatisfiable() {
        outcome_matches(&paper_example()).unwrap();
    }

    #[test]
    fn repaired_example_has_finite_model() {
        let p = paper_example_repaired();
        let report = p.checker().check();
        match &report.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                assert!(model
                    .iter()
                    .any(|f| f.pred == uniform_logic::Sym::new("leads")));
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn paper_mode_also_solves_both_examples() {
        // The as-published options (no domain enumeration) handle §5.
        let rep = paper_example().checker_with(SatOptions::paper()).check();
        assert_eq!(rep.outcome, SatOutcome::Unsatisfiable);
        let rep2 = paper_example_repaired()
            .checker_with(SatOptions::paper())
            .check();
        assert!(rep2.outcome.is_satisfiable(), "{:?}", rep2.outcome);
    }

    #[test]
    fn steamroller_refuted() {
        outcome_matches(&steamroller()).unwrap();
    }

    #[test]
    fn pigeonhole_small_sizes() {
        outcome_matches(&pigeonhole(2)).unwrap();
        outcome_matches(&pigeonhole(3)).unwrap();
    }

    #[test]
    fn colorings_satisfiable() {
        outcome_matches(&cycle_coloring(3)).unwrap();
        outcome_matches(&cycle_coloring(5)).unwrap();
    }

    #[test]
    fn dependency_mix_small_model() {
        let p = dependency_mix();
        let report = p.checker().check();
        match &report.outcome {
            SatOutcome::Satisfiable { explicit, .. } => {
                assert!(
                    explicit.len() <= 6,
                    "model unexpectedly large: {explicit:?}"
                );
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn infinity_detected_as_unknown() {
        outcome_matches(&axiom_of_infinity()).unwrap();
    }

    #[test]
    fn pelletier_propositional_all_refuted() {
        for p in pelletier_propositional() {
            outcome_matches(&p).unwrap();
        }
    }

    #[test]
    fn latin_squares_exist() {
        outcome_matches(&latin_square(1)).unwrap();
        outcome_matches(&latin_square(2)).unwrap();
        outcome_matches(&latin_square(3)).unwrap();
    }

    #[test]
    fn latin_square_model_is_a_latin_square() {
        let p = latin_square(2);
        let report = p.checker().check();
        match &report.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                let entries: Vec<_> = model
                    .iter()
                    .filter(|f| f.pred == uniform_logic::Sym::new("entry"))
                    .collect();
                assert_eq!(entries.len(), 4, "2x2 grid fully filled: {entries:?}");
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn queens_small_boards() {
        outcome_matches(&queens(1)).unwrap();
        outcome_matches(&queens(2)).unwrap();
        outcome_matches(&queens(3)).unwrap();
        outcome_matches(&queens(4)).unwrap();
    }

    #[test]
    fn queens_4_model_has_four_queens() {
        let report = queens(4).checker().check();
        match &report.outcome {
            SatOutcome::Satisfiable { model, .. } => {
                let queens: Vec<_> = model
                    .iter()
                    .filter(|f| f.pred == uniform_logic::Sym::new("queen"))
                    .collect();
                assert_eq!(queens.len(), 4, "{queens:?}");
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn schema_problems() {
        outcome_matches(&disjoint_hierarchy()).unwrap();
        outcome_matches(&household_cycle()).unwrap();
    }

    #[test]
    fn household_cycle_model_is_small() {
        let report = household_cycle().checker().check();
        match &report.outcome {
            SatOutcome::Satisfiable { explicit, .. } => {
                assert!(explicit.len() <= 4, "{explicit:?}");
            }
            other => panic!("expected model, got {other:?}"),
        }
    }

    #[test]
    fn suite_runs_clean() {
        for p in suite() {
            outcome_matches(&p).unwrap();
        }
    }
}
