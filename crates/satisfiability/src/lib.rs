//! # uniform-satisfiability
//!
//! Constraint *satisfiability* checking — part 2 of Bry, Decker & Manthey
//! (EDBT 1988): given rules and constraints, decide whether a **finite
//! model** exists at all, by constructing a sample fact base through
//! constraint enforcement, with the violated-constraint determination
//! powered by the integrity-maintenance machinery of `uniform-integrity`.
//!
//! * [`search`] — the enforcement search with level saturation,
//!   backtracking, fresh-constant budgets and iterative deepening;
//! * [`completion`] — the §4 rule-completion transform;
//! * [`solver`] — a bundled propositional CDCL solver behind a
//!   pluggable [`Solver`] trait (the engine of the SAT-backed repair
//!   path in `uniform-repair`);
//! * [`problems`] — the worked example of §5 and a benchmark library
//!   (Schubert's steamroller, pigeonhole, graph coloring, dependency
//!   sets, axioms of infinity).
//!
//! ```
//! use uniform_satisfiability::{SatChecker, SatOutcome};
//! use uniform_datalog::Database;
//!
//! let db = Database::parse("
//!     constraint some: exists X: employee(X).
//!     constraint sane: forall X: employee(X) -> person(X).
//! ").unwrap();
//! let report = SatChecker::from_database(&db).check();
//! assert!(report.outcome.is_satisfiable());
//! ```

pub mod completion;
pub mod problems;
pub mod search;
pub mod solver;

pub use completion::{completion_constraint, completion_constraints};
pub use problems::{Expectation, Problem};
pub use search::{SatChecker, SatOptions, SatOutcome, SatReport, SatStats};
pub use solver::{
    Assignment, CdclSolver, Cnf, Lit, SanityCheckingSolver, SolveResult, Solver, SolverStats,
};
