//! # uniform-integrity
//!
//! Integrity maintenance for deductive databases — part 1 of Bry, Decker &
//! Manthey, *A Uniform Approach to Constraint Satisfaction and Constraint
//! Satisfiability in Deductive Databases* (EDBT 1988).
//!
//! Given a database whose constraints hold and an update (single fact or
//! transaction), decide whether the constraints still hold afterwards —
//! evaluating only *simplified instances* of constraints *relevant* to the
//! update and to its *potential* consequences, never the full constraint
//! set:
//!
//! * [`relevance`] — Def. 2 and the precomputed occurrence index;
//! * [`simplify`] — Def. 3 simplified instances;
//! * [`potential`] — Def. 5 potential updates (fact-free closure);
//! * [`delta`] — §3.3.3 descendant-driven enumeration of induced updates
//!   (Def. 4);
//! * [`checker`] — Def. 6 update constraints and the two-phase method of
//!   Prop. 3;
//! * [`conditional`] — conditional updates (update patterns guarded by a
//!   query; the BRY 87 generalization §3.2 closes with);
//! * [`rule_update`] — rule additions/removals checked incrementally,
//!   "treated like conditional updates" (§3.2);
//! * [`baselines`] — full re-check, interleaved (Decker/Kowalski-style)
//!   and Lloyd–Topor-style methods for the experiments.
//!
//! ```
//! use uniform_datalog::{Database, Transaction, Update};
//! use uniform_integrity::Checker;
//! use uniform_logic::parse_literal;
//!
//! let mut db = Database::parse("
//!     q(a).
//!     constraint c1: forall X: p(X) -> q(X).
//! ").unwrap();
//! let ok = Update::from_literal(&parse_literal("p(a)").unwrap()).unwrap();
//! assert!(Checker::check_and_apply(&mut db, &Transaction::single(ok)).satisfied);
//! let bad = Update::from_literal(&parse_literal("p(zzz)").unwrap()).unwrap();
//! let report = Checker::check_and_apply(&mut db, &Transaction::single(bad));
//! assert!(!report.satisfied);
//! println!("rejected: {}", report.violations[0].constraint);
//! ```

pub mod baselines;
pub mod checker;
pub mod conditional;
pub mod delta;
pub mod potential;
pub mod registry;
pub mod relevance;
pub mod rule_update;
pub mod simplify;

pub use baselines::{full_recheck, interleaved_check, lloyd_topor_check, verdicts_agree};
pub use checker::{
    all_constraints_hold, CheckOptions, CheckReport, CheckStats, Checker, CompiledCheck,
    UpdateConstraint, Violation,
};
pub use conditional::ConditionalUpdate;
pub use delta::{induced_updates_by_diff, pattern_key, DeltaEngine, DeltaStats};
pub use potential::{direct_dependents, potential_updates, PotentialUpdates};
pub use registry::CompiledRegistry;
pub use relevance::{RelevanceIndex, RelevantOccurrence};
pub use rule_update::{check_rule_update, RuleUpdate, RuleUpdateChecker};
pub use simplify::{simplified_instances, SimplifiedInstance};
