//! Relevance of constraints to updates (Def. 2).
//!
//! "A constraint C is relevant to an update U iff the complement of U is
//! unifiable with a literal in C." The index below is the precomputed
//! `relevant(Id, L)` relation of §3.1: constraint literal occurrences
//! keyed by predicate and polarity, so that relevance resolution for an
//! update literal is a hash lookup plus unification attempts — with no
//! access to the fact base, as the two-phase architecture requires.

use std::collections::HashMap;
use uniform_logic::{unify_atoms, Constraint, Literal, RqLiteral, Subst, Sym};

/// One relevant constraint occurrence for an update literal.
#[derive(Clone, Debug)]
pub struct RelevantOccurrence<'a> {
    /// Index of the constraint in the indexed slice.
    pub constraint: usize,
    /// The literal occurrence of the constraint the update unifies with.
    pub occurrence: &'a RqLiteral,
    /// mgu of the occurrence literal and the complement of the update.
    pub mgu: Subst,
}

/// Precomputed literal-occurrence index over a constraint set.
#[derive(Clone, Debug, Default)]
pub struct RelevanceIndex {
    /// (predicate, polarity of the occurrence) → (constraint, occurrence).
    by_pred: HashMap<(Sym, bool), Vec<(usize, usize)>>,
    /// Per constraint: all literal occurrences (with paths).
    occurrences: Vec<Vec<RqLiteral>>,
    /// Per constraint: the universally quantified variables not governed
    /// by an existential quantifier (domain of τ, Def. 3).
    universals: Vec<Vec<Sym>>,
}

impl RelevanceIndex {
    pub fn build(constraints: &[Constraint]) -> RelevanceIndex {
        let mut by_pred: HashMap<(Sym, bool), Vec<(usize, usize)>> = HashMap::new();
        let mut occurrences = Vec::with_capacity(constraints.len());
        let mut universals = Vec::with_capacity(constraints.len());
        for (ci, c) in constraints.iter().enumerate() {
            let occs = c.rq.literals();
            for (oi, occ) in occs.iter().enumerate() {
                by_pred
                    .entry((occ.literal.atom.pred, occ.literal.positive))
                    .or_default()
                    .push((ci, oi));
            }
            occurrences.push(occs);
            universals.push(c.rq.instantiable_universals());
        }
        RelevanceIndex {
            by_pred,
            occurrences,
            universals,
        }
    }

    /// All occurrences making a constraint relevant to `update` (Def. 2):
    /// occurrences unifying with the complement of the update literal.
    pub fn relevant(&self, update: &Literal) -> Vec<RelevantOccurrence<'_>> {
        let complement = update.complement();
        let key = (complement.atom.pred, complement.positive);
        let mut out = Vec::new();
        if let Some(entries) = self.by_pred.get(&key) {
            for &(ci, oi) in entries {
                let occ = &self.occurrences[ci][oi];
                if let Some(mgu) = unify_atoms(&occ.literal.atom, &complement.atom) {
                    out.push(RelevantOccurrence {
                        constraint: ci,
                        occurrence: occ,
                        mgu,
                    });
                }
            }
        }
        out
    }

    /// Is any constraint relevant to `update`?
    pub fn any_relevant(&self, update: &Literal) -> bool {
        let complement = update.complement();
        let key = (complement.atom.pred, complement.positive);
        self.by_pred.get(&key).is_some_and(|entries| {
            entries.iter().any(|&(ci, oi)| {
                unify_atoms(&self.occurrences[ci][oi].literal.atom, &complement.atom).is_some()
            })
        })
    }

    /// τ-domain of a constraint: its instantiable universal variables.
    pub fn universals(&self, constraint: usize) -> &[Sym] {
        &self.universals[constraint]
    }

    /// Number of indexed constraints.
    pub fn len(&self) -> usize {
        self.occurrences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.occurrences.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{normalize, parse_formula, parse_literal};

    fn constraints(srcs: &[&str]) -> Vec<Constraint> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| {
                Constraint::new(
                    format!("c{}", i + 1),
                    normalize(&parse_formula(s).unwrap()).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn insertion_relevant_to_negative_occurrence() {
        // C1: ∀X ¬p(X) ∨ q(X). Insert p(a): complement ¬p(a) unifies with
        // the (negative) range occurrence of p.
        let cs = constraints(&["forall X: p(X) -> q(X)"]);
        let idx = RelevanceIndex::build(&cs);
        let rel = idx.relevant(&parse_literal("p(a)").unwrap());
        assert_eq!(rel.len(), 1);
        assert!(!rel[0].occurrence.literal.positive);
        // Deleting p(a) is not relevant to C1 (no positive p in C1).
        assert!(idx.relevant(&parse_literal("not p(a)").unwrap()).is_empty());
    }

    #[test]
    fn deletion_relevant_to_positive_occurrence() {
        // C2 of §3: ∀XY ¬p(X,Y) ∨ [∃Z q(X,Z) ∧ ¬s(Y,Z,a)].
        let cs = constraints(&["forall X, Y: p(X,Y) -> (exists Z: q(X,Z) & ~s(Y,Z,a))"]);
        let idx = RelevanceIndex::build(&cs);
        // Deleting q(c1,c2): complement q(c1,c2) unifies with q(X,Z).
        let rel = idx.relevant(&parse_literal("not q(c1,c2)").unwrap());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].occurrence.literal.atom.pred, Sym::new("q"));
        // Inserting s(...) is relevant via the negative occurrence.
        assert_eq!(idx.relevant(&parse_literal("s(a,b,a)").unwrap()).len(), 1);
        // Inserting s with a clashing constant is not.
        assert!(idx.relevant(&parse_literal("s(a,b,c)").unwrap()).is_empty());
        // Inserting q is not relevant (q occurs positively only).
        assert!(idx.relevant(&parse_literal("q(c1,c2)").unwrap()).is_empty());
    }

    #[test]
    fn multiple_occurrences_yield_multiple_entries() {
        // p occurs negatively twice.
        let cs = constraints(&["forall X: p(X) -> q(X)", "forall Y: p(Y) & r(Y) -> t(Y)"]);
        let idx = RelevanceIndex::build(&cs);
        let rel = idx.relevant(&parse_literal("p(a)").unwrap());
        assert_eq!(rel.len(), 2);
        let cons: Vec<usize> = rel.iter().map(|r| r.constraint).collect();
        assert!(cons.contains(&0) && cons.contains(&1));
        assert!(idx.any_relevant(&parse_literal("p(a)").unwrap()));
        assert!(!idx.any_relevant(&parse_literal("zzz(a)").unwrap()));
    }

    #[test]
    fn nonground_update_patterns_unify() {
        // Potential updates are patterns: member(V, W).
        let cs = constraints(&[
            "forall X, Y: member(X,Y) -> (forall Z: leads(Z,Y) -> subordinate(X,Z))",
        ]);
        let idx = RelevanceIndex::build(&cs);
        let rel = idx.relevant(&Literal::new(
            true,
            uniform_logic::Atom::parse_like("member", &["V", "W"]),
        ));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn universals_follow_existential_governance() {
        let cs =
            constraints(&["forall X: p(X) -> (exists Y: q(X,Y) & (forall Z: r(Y,Z) -> t(Z)))"]);
        let idx = RelevanceIndex::build(&cs);
        // X is instantiable; Z (inside ∃Y's scope) is not.
        let u: Vec<&str> = idx.universals(0).iter().map(|s| s.as_str()).collect();
        assert_eq!(u, vec!["X"]);
    }
}
