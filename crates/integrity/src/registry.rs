//! Precompiled update-constraint registry.
//!
//! §3.3.1 closes with: "Since it can be determined without querying the
//! facts, this set can be precompiled as well." The compile phase of the
//! checker depends only on the *shape* of the update — predicate and
//! polarity — not on its constants: compiling for the generalized
//! literal `p(V1,…,Vn)` yields update constraints whose triggers subsume
//! those of every ground `p(…)` update, and the delta evaluation anchors
//! to the actual update at evaluation time, so the generalized
//! compilation is sound and complete for all of them.
//!
//! [`CompiledRegistry`] caches one [`CompiledCheck`] per set of update
//! shapes; a transaction workload touching the same relations over and
//! over pays the compile phase once.

use crate::checker::{CheckReport, Checker, CompiledCheck};
use std::collections::HashMap;
use std::sync::Arc;
use uniform_datalog::Transaction;
use uniform_logic::{Atom, Literal, Sym, Term};

/// Cache of compiled checks, keyed by the generalized shape of the
/// transaction (sorted, deduplicated `(predicate, arity, polarity)`
/// triples).
#[derive(Default)]
pub struct CompiledRegistry {
    cache: HashMap<String, Arc<CompiledCheck>>,
    hits: usize,
    misses: usize,
}

impl CompiledRegistry {
    pub fn new() -> CompiledRegistry {
        CompiledRegistry::default()
    }

    /// Cache statistics: `(hits, misses)`.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drop all cached compilations (required after rules or constraints
    /// change).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// The generalized literal of an update shape: fresh variables in
    /// every argument position.
    fn generalize(pred: Sym, arity: usize, positive: bool) -> Literal {
        let args: Vec<Term> = (0..arity)
            .map(|i| Term::Var(Sym::new(&format!("_G{i}"))))
            .collect();
        Literal::new(positive, Atom::new(pred, args))
    }

    fn shape_key(tx: &Transaction) -> (String, Vec<(Sym, usize, bool)>) {
        let mut shapes: Vec<(Sym, usize, bool)> = tx
            .updates
            .iter()
            .map(|u| (u.fact.pred, u.fact.args.len(), u.insert))
            .collect();
        shapes.sort();
        shapes.dedup();
        let key = shapes
            .iter()
            .map(|(p, a, pos)| format!("{}{}/{a}", if *pos { '+' } else { '-' }, p))
            .collect::<Vec<_>>()
            .join(",");
        (key, shapes)
    }

    /// Fetch (or compile and cache) the compiled check for the shape of
    /// `tx` against `checker`.
    pub fn compiled_for(&mut self, checker: &Checker<'_>, tx: &Transaction) -> Arc<CompiledCheck> {
        let (key, shapes) = Self::shape_key(tx);
        if let Some(hit) = self.cache.get(&key) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let literals: Vec<Literal> = shapes
            .into_iter()
            .map(|(p, a, pos)| Self::generalize(p, a, pos))
            .collect();
        let compiled = Arc::new(checker.compile(&literals));
        self.cache.insert(key, compiled.clone());
        compiled
    }

    /// Fetch (or compile and cache) the compiled check for a conditional
    /// update's pattern. Conditional updates are the sharpest case for
    /// precompilation: the pattern (constants included) is known at
    /// definition time, so the cache key is the pattern itself, not a
    /// generalization.
    pub fn compiled_for_conditional(
        &mut self,
        checker: &Checker<'_>,
        cu: &crate::conditional::ConditionalUpdate,
    ) -> Arc<CompiledCheck> {
        let key = format!("where:{}", crate::delta::pattern_key(cu.literal()));
        if let Some(hit) = self.cache.get(&key) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let compiled = Arc::new(checker.compile_conditional(cu));
        self.cache.insert(key, compiled.clone());
        compiled
    }
}

impl Checker<'_> {
    /// Check a transaction, reusing (and populating) precompiled update
    /// constraints from `registry`. Equivalent to [`Checker::check`].
    pub fn check_with_registry(
        &self,
        registry: &mut CompiledRegistry,
        tx: &Transaction,
    ) -> CheckReport {
        let compiled = registry.compiled_for(self, tx);
        self.evaluate(&compiled, tx)
    }

    /// Check a conditional update, reusing precompiled update
    /// constraints. Equivalent to [`Checker::check_conditional`].
    pub fn check_conditional_with_registry(
        &self,
        registry: &mut CompiledRegistry,
        cu: &crate::conditional::ConditionalUpdate,
    ) -> CheckReport {
        let compiled = registry.compiled_for_conditional(self, cu);
        let tx = self.expand_conditional(cu);
        self.evaluate(&compiled, &tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::{Database, Update};
    use uniform_logic::parse_literal;

    fn upd(src: &str) -> Update {
        Update::from_literal(&parse_literal(src).unwrap()).unwrap()
    }

    fn db() -> Database {
        Database::parse(
            "
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
            student(s1). attends(s1, ddb).
            ",
        )
        .unwrap()
    }

    #[test]
    fn generalized_compilation_matches_direct_checking() {
        let d = db();
        let checker = Checker::new(&d);
        let mut reg = CompiledRegistry::new();
        for update in [
            "student(jack)",
            "student(jill)",
            "not student(s1)",
            "attends(s1, ddb)",
            "not attends(s1, ddb)",
            "unrelated(z)",
        ] {
            let tx = Transaction::single(upd(update));
            let direct = checker.check(&tx);
            let cached = checker.check_with_registry(&mut reg, &tx);
            assert_eq!(direct.satisfied, cached.satisfied, "divergence on {update}");
            assert_eq!(
                direct.violations.len(),
                cached.violations.len(),
                "violation count differs on {update}"
            );
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let d = db();
        let checker = Checker::new(&d);
        let mut reg = CompiledRegistry::new();
        for i in 0..10 {
            let tx = Transaction::new(vec![
                upd(&format!("student(n{i})")),
                upd(&format!("attends(n{i}, ddb)")),
            ]);
            assert!(checker.check_with_registry(&mut reg, &tx).satisfied);
        }
        let (hits, misses) = reg.stats();
        assert_eq!(misses, 1, "one shape, compiled once");
        assert_eq!(hits, 9);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let d = db();
        let checker = Checker::new(&d);
        let mut reg = CompiledRegistry::new();
        checker.check_with_registry(&mut reg, &Transaction::single(upd("student(a)")));
        checker.check_with_registry(&mut reg, &Transaction::single(upd("not student(a)")));
        checker.check_with_registry(&mut reg, &Transaction::single(upd("attends(a, ddb)")));
        assert_eq!(reg.len(), 3);
        // Order inside a transaction does not matter for the key.
        let t1 = Transaction::new(vec![upd("student(a)"), upd("attends(a, ddb)")]);
        let t2 = Transaction::new(vec![upd("attends(b, ddb)"), upd("student(b)")]);
        checker.check_with_registry(&mut reg, &t1);
        let before = reg.len();
        checker.check_with_registry(&mut reg, &t2);
        assert_eq!(reg.len(), before, "same shape set, same entry");
    }

    #[test]
    fn conditional_shapes_cached_by_pattern() {
        use crate::conditional::ConditionalUpdate;
        let d = Database::parse(
            "
            constraint cdb: forall X: student(X) -> attends(X, ddb).
            candidate(c1). candidate(c2). attends(c1, ddb). attends(c2, ddb).
            student(c1).
            ",
        )
        .unwrap();
        let checker = Checker::new(&d);
        let mut reg = CompiledRegistry::new();
        let cu = ConditionalUpdate::parse("student(X) where candidate(X)").unwrap();
        assert!(
            checker
                .check_conditional_with_registry(&mut reg, &cu)
                .satisfied
        );
        // Same shape, different variable name: cache hit.
        let cu2 = ConditionalUpdate::parse("student(Y) where candidate(Y)").unwrap();
        let direct = checker.check_conditional(&cu2);
        let cached = checker.check_conditional_with_registry(&mut reg, &cu2);
        assert_eq!(direct.satisfied, cached.satisfied);
        let (hits, misses) = reg.stats();
        assert_eq!((hits, misses), (1, 1));
        // A different pattern (constant position) compiles separately.
        let cu3 = ConditionalUpdate::parse("not attends(X, ddb) where attends(X, ddb)").unwrap();
        let rep = checker.check_conditional_with_registry(&mut reg, &cu3);
        assert!(
            !rep.satisfied,
            "unenrolling everyone violates cdb for students"
        );
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn clear_resets_cache() {
        let d = db();
        let checker = Checker::new(&d);
        let mut reg = CompiledRegistry::new();
        checker.check_with_registry(&mut reg, &Transaction::single(upd("student(a)")));
        assert!(!reg.is_empty());
        reg.clear();
        assert!(reg.is_empty());
    }
}
