//! Simplified instances of constraints (Def. 3, after Nicolas 1979).
//!
//! For a constraint `C` relevant to an update literal `L` through an
//! occurrence `Lc`:
//!
//! 1. σ = mgu(Lc, complement(L)); τ = σ restricted to the universally
//!    quantified variables of `C` not governed by an existential
//!    quantifier (the *defining substitution*);
//! 2. partially instantiate: `C·τ`, dropping quantifiers for variables
//!    bound by τ;
//! 3. replace `Lc·τ` by `false` when it is identical to the complement of
//!    `L·σ`, and apply the absorption laws.
//!
//! The function works uniformly for ground updates (checking, §3.1) and
//! non-ground potential updates (update-constraint compilation, §3.3.1):
//! in the latter case the returned trigger `L·σ` and the free variables of
//! the instance stay linked through shared variables.

use crate::relevance::RelevanceIndex;
use uniform_logic::{Constraint, Literal, Rq, Subst};

/// A simplified instance `s(C)` with its trigger `L·σ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimplifiedInstance {
    /// Index of the originating constraint.
    pub constraint: usize,
    /// The instance of the update literal this instance is tied to. Every
    /// free variable of `instance` occurs in `trigger`.
    pub trigger: Literal,
    /// The simplified instance to evaluate over the updated database.
    pub instance: Rq,
}

/// Compute all simplified instances of the indexed constraints wrt the
/// update literal `update` (one per relevant occurrence; §3: "More than
/// one simplified instance can be obtained from a same integrity
/// constraint").
///
/// Instances that simplify to `true` are dropped — they cannot be
/// violated.
pub fn simplified_instances(
    index: &RelevanceIndex,
    constraints: &[Constraint],
    update: &Literal,
) -> Vec<SimplifiedInstance> {
    let mut out = Vec::new();
    for rel in index.relevant(update) {
        let c = &constraints[rel.constraint];
        let tau: Subst = rel.mgu.restrict(index.universals(rel.constraint));
        let trigger = rel.mgu.apply_literal(update);

        // Replacement condition: the occurrence under τ must be literally
        // the complement of the (instantiated) update.
        let occ_after = tau.apply_literal(&rel.occurrence.literal);
        let instance = if occ_after == trigger.complement() {
            c.rq.replace_with_false(&rel.occurrence.path).apply(&tau)
        } else {
            c.rq.apply(&tau)
        };

        if instance == Rq::True {
            continue;
        }
        debug_assert!(
            instance
                .free_vars()
                .iter()
                .all(|v| trigger.vars().any(|w| w == *v)),
            "free variables of simplified instance {instance} not covered by trigger {trigger}"
        );
        out.push(SimplifiedInstance {
            constraint: rel.constraint,
            trigger,
            instance,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{normalize, parse_formula, parse_literal, Atom, Sym};

    fn cs(srcs: &[&str]) -> (Vec<Constraint>, RelevanceIndex) {
        let constraints: Vec<Constraint> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Constraint::new(
                    format!("c{}", i + 1),
                    normalize(&parse_formula(s).unwrap()).unwrap(),
                )
            })
            .collect();
        let index = RelevanceIndex::build(&constraints);
        (constraints, index)
    }

    #[test]
    fn paper_c1_example() {
        // §3: "The simplified instance of C1 associated with the update
        // p(a) is q(a)."
        let (constraints, index) = cs(&["forall X: p(X) -> q(X)"]);
        let si = simplified_instances(&index, &constraints, &parse_literal("p(a)").unwrap());
        assert_eq!(si.len(), 1);
        assert_eq!(si[0].instance, Rq::Lit(Atom::parse_like("q", &["a"]).pos()));
        assert_eq!(si[0].trigger, parse_literal("p(a)").unwrap());
    }

    #[test]
    fn paper_c2_example() {
        // §3: the simplified instance of C2 for ¬q(c1,c2) is
        // ∀Y ¬p(c1,Y) ∨ [∃Z q(c1,Z) ∧ ¬s(Y,Z,a)] — X bound to c1, the
        // existential Z left untouched, and *no* literal replaced by false
        // (q(c1,Z) is not identical to q(c1,c2)).
        let (constraints, index) = cs(&["forall X, Y: p(X,Y) -> (exists Z: q(X,Z) & ~s(Y,Z,a))"]);
        let si = simplified_instances(
            &index,
            &constraints,
            &parse_literal("not q(c1,c2)").unwrap(),
        );
        assert_eq!(si.len(), 1);
        match &si[0].instance {
            Rq::Forall { vars, range, body } => {
                assert_eq!(vars.len(), 1, "only Y remains quantified");
                assert_eq!(range[0], Atom::parse_like("p", &["c1", "Y"]));
                match &**body {
                    Rq::Exists { range, .. } => {
                        assert_eq!(range[0], Atom::parse_like("q", &["c1", "Z"]));
                    }
                    other => panic!("unexpected body {other:?}"),
                }
            }
            other => panic!("unexpected instance {other:?}"),
        }
    }

    #[test]
    fn existential_occurrence_replacement_collapses() {
        // C: ∃X employee(X). Deleting employee(a): the occurrence
        // employee(X) does NOT become false (X not instantiated by τ —
        // there are no instantiable universals), so the instance is the
        // whole constraint again.
        let (constraints, index) = cs(&["exists X: employee(X)"]);
        let si = simplified_instances(
            &index,
            &constraints,
            &parse_literal("not employee(a)").unwrap(),
        );
        assert_eq!(si.len(), 1);
        assert!(matches!(si[0].instance, Rq::Exists { .. }));
        // Insertion of employee(a) is not relevant (complement ¬employee(a)
        // does not unify with the positive occurrence).
        assert!(
            simplified_instances(&index, &constraints, &parse_literal("employee(a)").unwrap())
                .is_empty()
        );
    }

    #[test]
    fn ground_literal_replacement_in_body() {
        // C: ∀X ¬p(X) ∨ r(a). Insert p(b): instance r(a) (the ∀ collapses).
        let (constraints, index) = cs(&["forall X: p(X) -> r(a)"]);
        let si = simplified_instances(&index, &constraints, &parse_literal("p(b)").unwrap());
        assert_eq!(si.len(), 1);
        assert_eq!(si[0].instance, Rq::Lit(Atom::parse_like("r", &["a"]).pos()));
        // Deleting r(a): the positive occurrence r(a) unifies with the
        // complement; τ is empty (no universals bound); the occurrence is
        // identical to the complement → replaced by false → instance is
        // ∀X ¬p(X), i.e. Forall with body false.
        let si2 = simplified_instances(&index, &constraints, &parse_literal("not r(a)").unwrap());
        assert_eq!(si2.len(), 1);
        match &si2[0].instance {
            Rq::Forall { range, body, .. } => {
                assert_eq!(range[0], Atom::parse_like("p", &["X"]));
                assert_eq!(**body, Rq::False);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonground_potential_update_links_trigger_and_instance() {
        // Potential update member(V,W) against §5 constraint (3).
        let (constraints, index) =
            cs(&["forall X, Y: member(X,Y) -> (forall Z: leads(Z,Y) -> subordinate(X,Z))"]);
        let update = Literal::new(true, Atom::parse_like("member", &["V", "W"]));
        let si = simplified_instances(&index, &constraints, &update);
        assert_eq!(si.len(), 1);
        // Trigger keeps the pattern vars; instance's free vars are a
        // subset of the trigger's.
        let fv = si[0].instance.free_vars();
        assert!(!fv.is_empty());
        for v in fv {
            assert!(si[0].trigger.vars().any(|w| w == v));
        }
        // The member range atom was consumed (replaced by false).
        match &si[0].instance {
            Rq::Forall { range, .. } => {
                assert_eq!(range[0].pred, Sym::new("leads"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn irrelevant_updates_produce_nothing() {
        let (constraints, index) = cs(&["forall X: p(X) -> q(X)"]);
        assert!(
            simplified_instances(&index, &constraints, &parse_literal("r(a)").unwrap()).is_empty()
        );
        // Deletion of p: not relevant to C1.
        assert!(
            simplified_instances(&index, &constraints, &parse_literal("not p(a)").unwrap())
                .is_empty()
        );
    }

    #[test]
    fn tautological_instances_dropped() {
        // C: ∀X ¬p(X) ∨ p(X) — inserting p(a) gives ¬p(a)∨p(a); the range
        // occurrence is replaced by false leaving p(a)... which is the
        // body; it is NOT true, so it is kept. Use a genuinely trivial
        // case instead: C: ∀X ¬p(X) ∨ true is already True after
        // normalization, so build the constraint manually.
        let c = Constraint::new(
            "triv",
            Rq::Forall {
                vars: vec![Sym::new("X")],
                range: vec![Atom::parse_like("p", &["X"])],
                body: Box::new(Rq::True),
            },
        );
        let index = RelevanceIndex::build(std::slice::from_ref(&c));
        let si = simplified_instances(&index, &[c], &parse_literal("p(a)").unwrap());
        assert!(
            si.is_empty(),
            "instances that simplify to true are dropped: {si:?}"
        );
    }
}
