//! The integrity maintenance method (§3.2–3.3, Proposition 3).
//!
//! Two strictly separated phases:
//!
//! * **Compile** — from the update literals alone (no fact access):
//!   potential updates (Def. 5), then for every potential update the
//!   simplified instances of relevant constraints, packaged as *update
//!   constraints* `¬delta(U, Lτ) ∨ new(U, s(C))` (Def. 6).
//! * **Evaluate** — batch evaluation of all update constraints: group by
//!   trigger pattern, enumerate `delta` once per group, instantiate and
//!   evaluate every `s(C)` against the simulated updated state (`new`),
//!   deduplicating ground instances so shared subqueries are not
//!   re-evaluated (§3.2's "global evaluation").
//!
//! All constraints are satisfied in `U(D)` iff they were satisfied in `D`
//! and no evaluated instance is violated (Prop. 3).

use crate::delta::{pattern_key, DeltaEngine, DeltaStats};
use crate::potential::potential_updates;
use crate::relevance::RelevanceIndex;
use crate::simplify::{simplified_instances, SimplifiedInstance};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};
use uniform_datalog::{
    par::par_map, satisfies_closed, Database, FactSet, Interp, Model, OverlayEngine, ReadPattern,
    RuleSet, Snapshot, Transaction, Update,
};
use uniform_logic::{match_atom, Constraint, Literal, Rq, Sym};

/// Options controlling the evaluation phase (ablation switches for the
/// experiments).
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Deduplicate ground instances before evaluation and cache
    /// per-instance verdicts (the "global evaluation" of §3.2). Disabling
    /// reproduces the per-instance independent evaluation of interleaved
    /// methods (experiment E4).
    pub share_evaluations: bool,
    /// Stop at the first violation.
    pub fail_fast: bool,
    /// Safety bound on the potential-update closure.
    pub potential_limit: usize,
    /// Run the cost-based general-formula optimizer over each update
    /// constraint's instance before evaluation (§6 future work,
    /// [`uniform_datalog::planner`]; experiment E9). Off by default so
    /// the published evaluation order is reproduced exactly.
    pub optimize_instances: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            share_evaluations: true,
            fail_fast: false,
            potential_limit: 10_000,
            optimize_instances: false,
        }
    }
}

/// An update constraint (Def. 6): evaluate `instance` for every ground
/// answer of `delta(U, trigger)`.
#[derive(Clone, Debug)]
pub struct UpdateConstraint {
    pub constraint: usize,
    pub trigger: Literal,
    pub instance: Rq,
}

/// Output of the compile phase — computable without any fact access and
/// cacheable per update-literal shape (§3.3.1: "this set can be
/// precompiled as well").
#[derive(Clone, Debug, Default)]
pub struct CompiledCheck {
    pub potential: Vec<Literal>,
    pub update_constraints: Vec<UpdateConstraint>,
    pub truncated: bool,
}

/// A violated constraint instance.
#[derive(Clone, Debug)]
pub struct Violation {
    pub constraint: String,
    /// The ground induced update that triggered the violated instance
    /// (`None` for full-recheck reports).
    pub culprit: Option<Literal>,
    /// The violated ground instance.
    pub instance: Rq,
}

/// Counters for the experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    pub potential_updates: usize,
    pub update_constraints: usize,
    pub trigger_groups: usize,
    pub delta: DeltaStats,
    /// Ground instances whose evaluation was actually run.
    pub instances_evaluated: usize,
    /// Ground instances skipped by the shared-evaluation cache.
    pub instances_shared: usize,
    /// Ground subqueries answered from the shared engine's memo — the
    /// "redundant subqueries" a global evaluation avoids (§3.2, E4).
    pub subquery_memo_hits: usize,
    /// Canonical-model materializations of the simulated updated state.
    pub new_materializations: usize,
    /// Subformulas pruned by the instance optimizer (idempotence,
    /// absorption, complement collapse) — only with
    /// [`CheckOptions::optimize_instances`].
    pub plan_pruned: usize,
    /// `∧`/`∨` nodes reordered by the instance optimizer.
    pub plan_reordered: usize,
}

/// Evaluation result of one trigger group (the fan-out unit of the
/// parallel evaluation phase).
#[derive(Default)]
struct GroupOutcome {
    violations: Vec<Violation>,
    evaluated: usize,
    shared: usize,
    materializations: usize,
}

/// Result of an integrity check.
#[derive(Clone, Debug)]
pub struct CheckReport {
    pub satisfied: bool,
    pub violations: Vec<Violation>,
    /// Relation-level read set of the check, sorted by predicate name:
    /// the distinct predicates of [`CheckReport::read_patterns`]. Kept as
    /// the coarse projection for display and for consumers that only
    /// care *which* relations a verdict depends on.
    pub reads: Vec<Sym>,
    /// Binding-level read set of the check: one [`ReadPattern`] per
    /// access shape the verdict depends on, each argument position bound
    /// to the constant the check probed it with (`None` = unbounded).
    /// Seeded from the net update's own tuples (fully bound — Def. 1
    /// effectiveness is a membership test) and the constants of the
    /// simplified instances (Def. 6 pins them down), then closed through
    /// rule bodies propagating those constants; rules whose head
    /// constants contradict a pattern are skipped — they cannot derive
    /// any tuple the check probed. A commit pipeline admits a checked
    /// transaction while no tuple *covered by these patterns* has been
    /// written since the checked snapshot — see `uniform_datalog::txn`.
    pub read_patterns: Vec<ReadPattern>,
    pub stats: CheckStats,
}

impl CheckReport {
    fn satisfied_with(stats: CheckStats, read_patterns: Vec<ReadPattern>) -> CheckReport {
        CheckReport {
            satisfied: true,
            violations: Vec::new(),
            reads: reads_of(&read_patterns),
            read_patterns,
            stats,
        }
    }
}

/// The relation-level projection of a pattern set: distinct predicates,
/// sorted by name.
fn reads_of(patterns: &[ReadPattern]) -> Vec<Sym> {
    let mut reads: Vec<Sym> = patterns
        .iter()
        .map(|p| p.pred)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    reads.sort_by_key(|s| s.as_str());
    reads
}

/// The state a checker evaluates against: a live [`Database`] or a
/// pinned [`Snapshot`]. Both expose the same four components; the only
/// behavioral difference is where the canonical model comes from (the
/// database's cache vs the snapshot's pinned model).
enum CheckTarget<'a> {
    Db(&'a Database),
    Snap(&'a Snapshot),
}

/// The two-phase integrity checker, bound to a database or a snapshot.
pub struct Checker<'a> {
    target: CheckTarget<'a>,
    index: RelevanceIndex,
    options: CheckOptions,
}

impl<'a> Checker<'a> {
    pub fn new(db: &'a Database) -> Checker<'a> {
        Checker::with_options(db, CheckOptions::default())
    }

    pub fn with_options(db: &'a Database, options: CheckOptions) -> Checker<'a> {
        Checker {
            target: CheckTarget::Db(db),
            index: RelevanceIndex::build(db.constraints()),
            options,
        }
    }

    /// A checker evaluating against a pinned snapshot: same verdicts as
    /// a checker on the originating database at snapshot time, but
    /// usable from any thread while writers keep committing. This is
    /// the checking mode of the concurrent commit pipeline — and the
    /// point where that pipeline's incremental model maintenance pays
    /// off twice: the snapshot's pinned model *is* the commit queue's
    /// maintained model (`uniform_datalog::txn::ModelPath::Maintained`),
    /// so the `evaluate` phase's `current` interpretation is shared by
    /// reference, never rematerialized per check.
    pub fn for_snapshot(snapshot: &'a Snapshot) -> Checker<'a> {
        Checker::for_snapshot_with_options(snapshot, CheckOptions::default())
    }

    pub fn for_snapshot_with_options(snapshot: &'a Snapshot, options: CheckOptions) -> Checker<'a> {
        Checker {
            target: CheckTarget::Snap(snapshot),
            index: RelevanceIndex::build(snapshot.constraints()),
            options,
        }
    }

    pub fn options(&self) -> CheckOptions {
        self.options
    }

    fn facts(&self) -> &FactSet {
        match self.target {
            CheckTarget::Db(db) => db.facts(),
            CheckTarget::Snap(s) => s.facts(),
        }
    }

    fn rules(&self) -> &RuleSet {
        match self.target {
            CheckTarget::Db(db) => db.rules(),
            CheckTarget::Snap(s) => s.rules(),
        }
    }

    fn constraints(&self) -> &[Constraint] {
        match self.target {
            CheckTarget::Db(db) => db.constraints(),
            CheckTarget::Snap(s) => s.constraints(),
        }
    }

    /// The canonical model of the checked state.
    pub fn model(&self) -> Arc<Model> {
        match self.target {
            CheckTarget::Db(db) => db.model(),
            CheckTarget::Snap(s) => s.model_arc(),
        }
    }

    /// Phase 1: compile update constraints for the given update literals.
    /// Touches rules and constraints only — never the fact base.
    pub fn compile(&self, updates: &[Literal]) -> CompiledCheck {
        let mut potential: Vec<Literal> = Vec::new();
        let mut truncated = false;
        let mut seen_patterns: HashMap<String, ()> = HashMap::new();
        for u in updates {
            let p = potential_updates(self.rules(), u, self.options.potential_limit);
            truncated |= p.truncated;
            for lit in p.literals {
                if seen_patterns.insert(pattern_key(&lit), ()).is_none() {
                    potential.push(lit);
                }
            }
        }
        let mut update_constraints = Vec::new();
        for lit in &potential {
            for SimplifiedInstance {
                constraint,
                trigger,
                instance,
            } in simplified_instances(&self.index, self.constraints(), lit)
            {
                update_constraints.push(UpdateConstraint {
                    constraint,
                    trigger,
                    instance,
                });
            }
        }
        CompiledCheck {
            potential,
            update_constraints,
            truncated,
        }
    }

    /// The binding-level read set of evaluating `compiled` for `tx`:
    /// the net update's own tuples (fully bound), every trigger and
    /// instance literal of the update constraints with its constants
    /// bound, closed downward through rule bodies propagating those
    /// constants (delta descent and overlay evaluation read exactly
    /// through rules). A deliberate over-approximation — sound for
    /// conflict detection, deterministic, and computable without fact
    /// access.
    fn read_patterns(&self, compiled: &CompiledCheck, tx: &Transaction) -> Vec<ReadPattern> {
        let mut closure = self.rules().templates().specializer();
        for u in &tx.updates {
            closure.add(u.fact.pred, u.fact.args.iter().map(|&c| Some(c)).collect());
        }
        for uc in &compiled.update_constraints {
            closure.add_atom(&uc.trigger.atom);
            for occ in uc.instance.literals() {
                closure.add_atom(&occ.literal.atom);
            }
        }
        closure.close()
    }

    /// Phase 2: evaluate a compiled check against the database and the
    /// transaction (Def. 1 net effect).
    pub fn evaluate(&self, compiled: &CompiledCheck, tx: &Transaction) -> CheckReport {
        let mut stats = CheckStats {
            potential_updates: compiled.potential.len(),
            update_constraints: compiled.update_constraints.len(),
            ..CheckStats::default()
        };
        let read_patterns = self.read_patterns(compiled, tx);

        let (adds, dels) = tx.net_effect(self.facts());
        if adds.is_empty() && dels.is_empty() {
            return CheckReport::satisfied_with(stats, read_patterns);
        }
        let net_updates: Vec<Update> = adds
            .iter()
            .cloned()
            .map(Update::insert)
            .chain(dels.iter().cloned().map(Update::delete))
            .collect();

        let current = self.model();
        let (updated_adds, updated_dels) = (adds.clone(), dels.clone());
        let updated = OverlayEngine::updated(self.facts(), self.rules(), adds, dels);
        let delta = DeltaEngine::new(&current, &updated, self.rules(), &net_updates);

        // Optionally optimize each instance once, up front (§6: the
        // evaluation phase owns whole formulas, so formula-level
        // optimization applies before any instance is evaluated).
        let optimized: Vec<UpdateConstraint>;
        let constraints: &[UpdateConstraint] = if self.options.optimize_instances {
            let planner = uniform_datalog::Planner::new(self.facts());
            optimized = compiled
                .update_constraints
                .iter()
                .map(|uc| {
                    let (instance, report) = planner.optimize_with_report(&uc.instance);
                    stats.plan_pruned += report.pruned;
                    stats.plan_reordered += report.reordered;
                    UpdateConstraint {
                        constraint: uc.constraint,
                        trigger: uc.trigger.clone(),
                        instance,
                    }
                })
                .collect();
            &optimized
        } else {
            &compiled.update_constraints
        };

        // Group update constraints by trigger pattern so each delta
        // enumeration runs once.
        let mut groups: HashMap<String, Vec<&UpdateConstraint>> = HashMap::new();
        for uc in constraints {
            groups.entry(pattern_key(&uc.trigger)).or_default().push(uc);
        }
        stats.trigger_groups = groups.len();

        // Deterministic group order (HashMap iteration order is not).
        let mut ordered_groups: Vec<(&String, &Vec<&UpdateConstraint>)> = groups.iter().collect();
        ordered_groups.sort_by_key(|(key, _)| key.as_str());

        // Per-group evaluation, shared by the sequential (fail-fast) and
        // parallel paths. Verdicts are cached across groups; the shared
        // engines (`updated`, `delta`) are Sync, so groups can evaluate
        // concurrently. `stop_early` reports whether a violation should
        // end the evaluation after this group.
        //
        // Each distinct ground instance gets a `OnceLock` slot: exactly
        // one group evaluates it (racers on the *same* instance block on
        // that slot, never on the whole cache), so `instances_evaluated`
        // = distinct instances and `instances_shared` = re-occurrences —
        // deterministic totals however the groups are scheduled.
        let verdict_cache: Mutex<HashMap<Rq, Arc<OnceLock<bool>>>> = Mutex::new(HashMap::new());
        let eval_group = |members: &[&UpdateConstraint], stop_early: bool| -> GroupOutcome {
            let mut outcome = GroupOutcome::default();
            let representative = &members[0].trigger;
            'group: for answer in delta.delta(representative) {
                let fact = answer.atom.to_fact().expect("delta answers are ground");
                for uc in members {
                    let Some(theta) = match_atom(&uc.trigger.atom, &fact) else {
                        continue;
                    };
                    let ground = uc.instance.apply(&theta);
                    debug_assert!(ground.is_closed(), "instance not closed: {ground}");
                    let holds = if self.options.share_evaluations {
                        // Probe before cloning: hits (the common case the
                        // cache exists for) must not deep-clone the
                        // ground formula just to look it up.
                        let slot = {
                            let mut cache = verdict_cache.lock();
                            match cache.get(&ground) {
                                Some(slot) => slot.clone(),
                                None => {
                                    let slot = Arc::new(OnceLock::new());
                                    cache.insert(ground.clone(), slot.clone());
                                    slot
                                }
                            }
                        };
                        // Evaluate outside the cache lock.
                        let mut evaluated_here = false;
                        let v = *slot.get_or_init(|| {
                            evaluated_here = true;
                            satisfies_closed(&updated, &ground)
                        });
                        if evaluated_here {
                            outcome.evaluated += 1;
                        } else {
                            outcome.shared += 1;
                        }
                        v
                    } else {
                        // Independent evaluation (the interleaved-style
                        // drawback of §3.2): a fresh engine per instance,
                        // sharing nothing — no verdict cache, no subquery
                        // memo.
                        outcome.evaluated += 1;
                        let fresh = OverlayEngine::updated(
                            self.facts(),
                            self.rules(),
                            updated_adds.clone(),
                            updated_dels.clone(),
                        );
                        let v = satisfies_closed(&fresh, &ground);
                        outcome.materializations += fresh.materialization_count();
                        v
                    };
                    if !holds {
                        outcome.violations.push(Violation {
                            constraint: self.constraints()[uc.constraint].name.clone(),
                            culprit: Some(answer.clone()),
                            instance: ground,
                        });
                        if stop_early {
                            break 'group;
                        }
                    }
                }
            }
            outcome
        };

        let outcomes: Vec<GroupOutcome> = if self.options.fail_fast {
            // Sequential with early exit at the first violation.
            let mut out = Vec::new();
            for (_, members) in &ordered_groups {
                let outcome = eval_group(members, true);
                let stop = !outcome.violations.is_empty();
                out.push(outcome);
                if stop {
                    break;
                }
            }
            out
        } else {
            // Every group must be evaluated anyway: fan out across
            // threads. Outcomes come back in group order, so the
            // violation list is deterministic regardless of scheduling.
            par_map(&ordered_groups, |(_, members)| eval_group(members, false))
        };

        let mut violations = Vec::new();
        for outcome in outcomes {
            violations.extend(outcome.violations);
            stats.instances_evaluated += outcome.evaluated;
            stats.instances_shared += outcome.shared;
            stats.new_materializations += outcome.materializations;
        }

        stats.delta = delta.stats();
        stats.subquery_memo_hits = updated.memo_hits();
        stats.new_materializations += updated.materialization_count();
        CheckReport {
            satisfied: violations.is_empty(),
            violations,
            reads: reads_of(&read_patterns),
            read_patterns,
            stats,
        }
    }

    /// Both phases for a transaction.
    pub fn check(&self, tx: &Transaction) -> CheckReport {
        let literals: Vec<Literal> = tx.updates.iter().map(|u| u.to_literal()).collect();
        let compiled = self.compile(&literals);
        self.evaluate(&compiled, tx)
    }

    /// Both phases for a single-fact update.
    pub fn check_update(&self, update: &Update) -> CheckReport {
        self.check(&Transaction::single(update.clone()))
    }

    /// Check, and apply the transaction to `db` only if it preserves
    /// integrity. This is the guarded-update operation integrity
    /// maintenance exists for. Requires exclusive access.
    pub fn check_and_apply(db: &mut Database, tx: &Transaction) -> CheckReport {
        let report = Checker::new(db).check(tx);
        if report.satisfied {
            for u in &tx.updates {
                db.apply(u).expect("checked transaction misuses an arity");
            }
        }
        report
    }
}

/// Sanity helper used by tests and the satisfiability layer: does `interp`
/// satisfy every constraint of `db` outright?
pub fn all_constraints_hold(db: &Database, interp: &dyn Interp) -> bool {
    db.constraints()
        .iter()
        .all(|c| satisfies_closed(interp, &c.rq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_literal;

    fn upd(src: &str) -> Update {
        Update::from_literal(&parse_literal(src).unwrap()).unwrap()
    }

    fn db(src: &str) -> Database {
        let db = Database::parse(src).unwrap();
        assert!(db.is_consistent(), "fixtures must start consistent");
        db
    }

    #[test]
    fn relational_accept_and_reject() {
        // C1: ∀X ¬p(X) ∨ q(X).
        let d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let checker = Checker::new(&d);
        assert!(checker.check_update(&upd("p(a)")).satisfied);
        let rep = checker.check_update(&upd("p(b)"));
        assert!(!rep.satisfied);
        assert_eq!(rep.violations[0].constraint, "c1");
        assert_eq!(
            rep.violations[0].culprit,
            Some(parse_literal("p(b)").unwrap())
        );
    }

    #[test]
    fn deletion_violates_existential() {
        let d = db("employee(a). constraint lively: exists X: employee(X).");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("not employee(a)"));
        assert!(!rep.satisfied);
        // Deleting when another employee remains is fine.
        let d2 = db("employee(a). employee(b). constraint lively: exists X: employee(X).");
        assert!(
            Checker::new(&d2)
                .check_update(&upd("not employee(a)"))
                .satisfied
        );
    }

    #[test]
    fn induced_update_triggers_constraint() {
        // §3.2 running example: enrolled derived from student; the
        // constraint is violated through the *induced* insertion.
        let d = db("
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        ");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("student(jack)"));
        assert!(!rep.satisfied);
        // With the attends fact present the same update is accepted.
        let d2 = db("
            attends(jack, ddb).
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        ");
        assert!(
            Checker::new(&d2)
                .check_update(&upd("student(jack)"))
                .satisfied
        );
    }

    #[test]
    fn noop_updates_are_always_safe() {
        let d = db("p(a). constraint c: forall X: p(X) -> q(X). q(a).");
        let checker = Checker::new(&d);
        // Re-inserting an existing fact: Def. 1 no-op; no evaluation.
        let rep = checker.check_update(&upd("p(a)"));
        assert!(rep.satisfied);
        assert_eq!(rep.stats.instances_evaluated, 0);
        // Deleting an absent fact likewise.
        assert!(checker.check_update(&upd("not p(zzz)")).satisfied);
    }

    #[test]
    fn irrelevant_updates_cheap() {
        let d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("r(zzz)"));
        assert!(rep.satisfied);
        assert_eq!(rep.stats.update_constraints, 0);
        assert_eq!(rep.stats.instances_evaluated, 0);
    }

    #[test]
    fn deletion_restores_consistency_direction() {
        // Deleting p(b) from an inconsistent state is outside the method's
        // contract (precondition: D consistent), but deleting q(a) from a
        // consistent one must be caught.
        let d = db("p(a). q(a). constraint c1: forall X: p(X) -> q(X).");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("not q(a)"));
        assert!(!rep.satisfied);
        assert!(checker.check_update(&upd("not p(a)")).satisfied);
    }

    #[test]
    fn transaction_net_effect_checked_atomically() {
        let d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let checker = Checker::new(&d);
        // Insert p(b) and its justification q(b) together: fine.
        let tx = Transaction::new(vec![upd("p(b)"), upd("q(b)")]);
        assert!(checker.check(&tx).satisfied);
        // Insert p(b) but also delete q(a): two independent violations…
        let tx2 = Transaction::new(vec![upd("p(b)")]);
        assert!(!checker.check(&tx2).satisfied);
        // Cancel inside the transaction: no net change, satisfied.
        let tx3 = Transaction::new(vec![upd("p(b)"), upd("not p(b)")]);
        let rep = checker.check(&tx3).satisfied;
        assert!(rep);
    }

    #[test]
    fn recursive_rules_supported() {
        let d = db("
            edge(a,b). edge(b,c).
            tc(X,Y) :- edge(X,Y).
            tc(X,Z) :- tc(X,Y), edge(Y,Z).
            constraint noloop: forall X: tc(X,X) -> false.
        ");
        let checker = Checker::new(&d);
        assert!(checker.check_update(&upd("edge(c,d)")).satisfied);
        let rep = checker.check_update(&upd("edge(c,a)"));
        assert!(!rep.satisfied, "closing the cycle creates tc(a,a)");
        assert!(rep.stats.delta.recursive_fallbacks > 0);
    }

    #[test]
    fn check_and_apply_guards_database() {
        let mut d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let bad = Transaction::single(upd("p(b)"));
        let rep = Checker::check_and_apply(&mut d, &bad);
        assert!(!rep.satisfied);
        assert!(
            !d.holds(&uniform_logic::Fact::parse_like("p", &["b"])),
            "rejected update not applied"
        );
        let good = Transaction::single(upd("p(a)"));
        assert!(Checker::check_and_apply(&mut d, &good).satisfied);
        assert!(d.holds(&uniform_logic::Fact::parse_like("p", &["a"])));
    }

    #[test]
    fn agrees_with_full_recheck_on_examples() {
        let d = db("
            emp(a). emp(b). dept(d). assign(a,d). assign(b,d).
            works(X) :- assign(X,Y), dept(Y).
            constraint busy: forall X: emp(X) -> (exists Y: assign(X,Y)).
        ");
        let checker = Checker::new(&d);
        for update in [
            "assign(b,e)",
            "not assign(a,d)",
            "emp(c)",
            "not emp(b)",
            "dept(e)",
        ] {
            let u = upd(update);
            let fast = checker.check_update(&u).satisfied;
            // Oracle: apply on a copy and fully re-check.
            let mut copy = d.clone();
            copy.apply(&u).unwrap();
            let slow = copy.is_consistent();
            assert_eq!(fast, slow, "divergence on {update}");
        }
    }

    #[test]
    fn shared_evaluation_reduces_work() {
        // Two constraints relevant to the same update with the same
        // simplified instance body.
        let d = db("
            enrolled(X, cs) :- student(X).
            constraint a: forall X: student(X) -> attends(X, ddb).
            constraint b: forall X: enrolled(X, cs) -> attends(X, ddb).
        ");
        let shared = Checker::new(&d);
        let rep = shared.check_update(&upd("student(jack)"));
        assert!(!rep.satisfied);
        assert!(rep.stats.instances_shared > 0, "stats: {:?}", rep.stats);
        let unshared = Checker::with_options(
            &d,
            CheckOptions {
                share_evaluations: false,
                ..CheckOptions::default()
            },
        );
        let rep2 = unshared.check_update(&upd("student(jack)"));
        assert!(!rep2.satisfied);
        assert!(rep2.stats.instances_evaluated > rep.stats.instances_evaluated);
    }

    #[test]
    fn optimizer_preserves_verdicts() {
        let d = db("
            emp(a). emp(b). dept(d). assign(a,d). assign(b,d). q(a).
            works(X) :- assign(X,Y), dept(Y).
            constraint busy: forall X: emp(X) -> (exists Y: assign(X,Y)).
            constraint c1: forall X: p(X) -> (q(X) | (exists Y: assign(X, Y))).
        ");
        let plain = Checker::new(&d);
        let tuned = Checker::with_options(
            &d,
            CheckOptions {
                optimize_instances: true,
                ..CheckOptions::default()
            },
        );
        for update in [
            "p(a)",
            "p(b)",
            "p(zzz)",
            "emp(c)",
            "not assign(a,d)",
            "dept(e)",
        ] {
            let u = upd(update);
            let a = plain.check_update(&u);
            let b = tuned.check_update(&u);
            assert_eq!(a.satisfied, b.satisfied, "verdict changed on {update}");
        }
    }

    #[test]
    fn fail_fast_stops_early() {
        let d = db("
            constraint a: forall X: p(X) -> q(X).
            constraint b: forall X: p(X) -> r(X).
        ");
        let checker = Checker::with_options(
            &d,
            CheckOptions {
                fail_fast: true,
                ..CheckOptions::default()
            },
        );
        let rep = checker.check_update(&upd("p(a)"));
        assert!(!rep.satisfied);
        assert_eq!(rep.violations.len(), 1);
    }

    #[test]
    fn snapshot_checker_shares_the_pinned_model_by_reference() {
        // The `current` interpretation of the evaluation phase must be
        // the snapshot's pinned model Arc — with the commit pipeline's
        // maintained model installed, a per-check rematerialization here
        // would silently undo the whole maintenance win.
        let d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let snap = d.snapshot();
        let checker = Checker::for_snapshot(&snap);
        assert!(Arc::ptr_eq(&checker.model(), &snap.model_arc()));
        // And checking does not clone it either: still the same Arc.
        let _ = checker.check_update(&upd("p(a)"));
        assert!(Arc::ptr_eq(&checker.model(), &snap.model_arc()));
    }

    #[test]
    fn snapshot_checker_agrees_and_survives_later_commits() {
        let mut d = db("q(a). constraint c1: forall X: p(X) -> q(X).");
        let snap = d.snapshot();
        // The live database moves on; the snapshot checker must not care.
        d.apply(&upd("not q(a)")).unwrap();
        let checker = Checker::for_snapshot(&snap);
        assert!(
            checker.check_update(&upd("p(a)")).satisfied,
            "q(a) holds at snapshot time"
        );
        assert!(!checker.check_update(&upd("p(b)")).satisfied);
        // Same update against the live state is now rejected.
        assert!(!Checker::new(&d).check_update(&upd("p(a)")).satisfied);
    }

    #[test]
    fn read_sets_cover_checked_relations_and_close_over_rules() {
        let d = db("
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        ");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("student(jack)"));
        let reads: Vec<&str> = rep.reads.iter().map(|s| s.as_str()).collect();
        for needed in ["student", "enrolled", "attends"] {
            assert!(reads.contains(&needed), "missing {needed}: {reads:?}");
        }
        let mut sorted = reads.clone();
        sorted.sort();
        assert_eq!(reads, sorted, "read set must be name-sorted");
        // Irrelevant updates read only their own relation.
        let rep2 = checker.check_update(&upd("zzz(a)"));
        assert_eq!(
            rep2.reads.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["zzz"]
        );
        // No-op transactions still report the relations they probed.
        let rep3 = checker.check(&Transaction::new(vec![]));
        assert!(rep3.satisfied && rep3.reads.is_empty() && rep3.read_patterns.is_empty());
    }

    #[test]
    fn read_patterns_pin_the_updates_constants() {
        // The defining substitution (Def. 3) propagates `jack` into every
        // trigger and instance literal, and the closure propagates it
        // through the rule body — so every pattern of this check is fully
        // bound, and a concurrent write about `jill` is disjoint from all
        // of them.
        let d = db("
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        ");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("student(jack)"));
        assert!(!rep.read_patterns.is_empty());
        let jack = Sym::new("jack");
        let jill = Sym::new("jill");
        for p in &rep.read_patterns {
            assert!(
                p.args.iter().all(|a| a.is_some()),
                "pattern not fully bound: {p:?}"
            );
            assert!(!p.args.contains(&Some(jill)));
        }
        // The rule-closure pattern student(jack) is present (reached from
        // the enrolled(jack, cs) trigger through the rule head).
        assert!(rep
            .read_patterns
            .iter()
            .any(|p| p.pred.as_str() == "student" && p.args == vec![Some(jack)]));
        // The relation-level projection matches the patterns.
        let from_patterns: BTreeSet<Sym> = rep.read_patterns.iter().map(|p| p.pred).collect();
        let reads: BTreeSet<Sym> = rep.reads.iter().copied().collect();
        assert_eq!(from_patterns, reads);
    }

    #[test]
    fn read_patterns_widen_only_genuinely_unbounded_accesses() {
        // An existential over assign leaves Y unbound: the check scans
        // assign at X=jack with the second position open, and dept at a
        // data-dependent key — unbounded. Both shapes must be reported
        // honestly: the former key-bound on position 0, the latter whole.
        let d = db("
            works(X) :- assign(X,Y), dept(Y).
            constraint busy: forall X: emp(X) -> works(X).
            dept(d). assign(a,d). emp(a).
        ");
        let checker = Checker::new(&d);
        let rep = checker.check_update(&upd("emp(jack)"));
        let jack = Sym::new("jack");
        let assign = rep
            .read_patterns
            .iter()
            .find(|p| p.pred.as_str() == "assign")
            .expect("assign is read through the works rule");
        assert_eq!(assign.args, vec![Some(jack), None]);
        let dept = rep
            .read_patterns
            .iter()
            .find(|p| p.pred.as_str() == "dept")
            .expect("dept is read through the works rule");
        assert_eq!(dept.args, vec![None], "join key is data-dependent");
    }

    #[test]
    fn compile_phase_is_fact_free() {
        // Compiling against a database whose EDB changes afterwards still
        // evaluates correctly: the compiled object depends only on rules
        // and constraints.
        let mut d = db("constraint c1: forall X: p(X) -> q(X).");
        let checker = Checker::new(&d);
        let compiled = checker.compile(&[parse_literal("p(a)").unwrap()]);
        assert_eq!(compiled.update_constraints.len(), 1);
        // Make q(a) true, then evaluate: satisfied.
        d.insert_fact(&uniform_logic::Fact::parse_like("q", &["a"]));
        let checker2 = Checker::new(&d);
        let rep = checker2.evaluate(&compiled, &Transaction::single(upd("p(a)")));
        assert!(rep.satisfied);
    }
}
