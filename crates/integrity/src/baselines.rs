//! Baseline integrity-checking methods the paper positions itself
//! against. All three return the same verdict as [`crate::Checker`]
//! (property-tested); the differences are in what work they do — which is
//! exactly what experiments E1–E4 measure.
//!
//! * [`full_recheck`] — apply the update and evaluate every constraint
//!   from scratch (the method Nicolas 1979 improves upon; Prop. 1/2 used
//!   naively).
//! * [`interleaved_check`] — the Decker 86 / Kowalski–Sadri–Soper 87
//!   architecture: compute *actual* induced updates eagerly (even those no
//!   constraint cares about) and evaluate each simplified instance
//!   immediately and independently.
//! * [`lloyd_topor_check`] — the Lloyd–Topor 86 variant: same two-phase
//!   compilation, but triggers are enumerated with `new` instead of
//!   `delta` ("Instead of evaluating expressions of the form
//!   ¬delta(U,L) ∨ new(U,s(C)), they evaluate formulas corresponding to
//!   ¬new(U,L) ∨ new(U,s(C))" — §3.2), so instances are also evaluated
//!   for trigger instances whose truth did not change.

use crate::checker::{CheckReport, CheckStats, Checker, Violation};
use crate::delta::pattern_key;
use crate::relevance::RelevanceIndex;
use crate::simplify::simplified_instances;
use std::collections::{HashMap, HashSet, VecDeque};
use uniform_datalog::{
    satisfies_closed, solve_conjunction, Database, Interp, Model, OverlayEngine, Transaction,
};
use uniform_logic::{match_atom, Fact, Literal, Rq, Subst, Sym};

/// Baseline A: apply the update to a copy and evaluate the full
/// constraint set over the recomputed canonical model.
pub fn full_recheck(db: &Database, tx: &Transaction) -> CheckReport {
    let mut edb = db.facts().clone();
    tx.apply(&mut edb);
    let model = Model::compute(&edb, db.rules());
    let mut violations = Vec::new();
    let mut stats = CheckStats {
        new_materializations: 1,
        ..CheckStats::default()
    };
    for c in db.constraints() {
        stats.instances_evaluated += 1;
        if !satisfies_closed(&model, &c.rq) {
            violations.push(Violation {
                constraint: c.name.clone(),
                culprit: None,
                instance: c.rq.clone(),
            });
        }
    }
    CheckReport {
        satisfied: violations.is_empty(),
        violations,
        reads: Vec::new(),
        read_patterns: Vec::new(),
        stats,
    }
}

/// Baseline B: interleaved induced-update checking.
///
/// Forward-chains **all** ground induced updates from the transaction
/// (§3.2 drawback 1: "all induced updates are computed, even those for
/// which no constraint is relevant"), and evaluates every simplified
/// instance the moment its inducing update is discovered, each evaluation
/// independent of the others (§3.2 drawback 2).
pub fn interleaved_check(db: &Database, tx: &Transaction) -> CheckReport {
    let mut stats = CheckStats::default();
    let (adds, dels) = tx.net_effect(db.facts());
    if adds.is_empty() && dels.is_empty() {
        return CheckReport {
            satisfied: true,
            violations: Vec::new(),
            reads: Vec::new(),
            read_patterns: Vec::new(),
            stats,
        };
    }
    let current = db.model();
    let index = RelevanceIndex::build(db.constraints());

    // One overlay engine for generating induced updates; instance
    // evaluations use fresh engines below (independent evaluation).
    let generator = OverlayEngine::updated(db.facts(), db.rules(), adds.clone(), dels.clone());

    let mut queue: VecDeque<Literal> = VecDeque::new();
    let mut known: HashSet<Literal> = HashSet::new();
    for f in &adds {
        if !current.contains(f) {
            let lit = Literal::new(true, f.to_atom());
            if known.insert(lit.clone()) {
                queue.push_back(lit);
            }
        }
    }
    for f in &dels {
        if current.contains(f) && !generator.holds(f) {
            let lit = Literal::new(false, f.to_atom());
            if known.insert(lit.clone()) {
                queue.push_back(lit);
            }
        }
    }

    let mut violations = Vec::new();
    while let Some(delta_lit) = queue.pop_front() {
        stats.delta.answers += 1;

        // Check simplified instances of constraints relevant to this
        // ground induced update — immediately and independently.
        for si in simplified_instances(&index, db.constraints(), &delta_lit) {
            debug_assert!(si.instance.is_closed());
            stats.instances_evaluated += 1;
            // Fresh engine per evaluation: no sharing of any kind.
            let engine = OverlayEngine::updated(db.facts(), db.rules(), adds.clone(), dels.clone());
            let ok = satisfies_closed(&engine, &si.instance);
            stats.new_materializations += engine.materialization_count();
            if !ok {
                violations.push(Violation {
                    constraint: db.constraints()[si.constraint].name.clone(),
                    culprit: Some(delta_lit.clone()),
                    instance: si.instance,
                });
            }
        }

        // Generate successors through every rule body occurrence.
        let delta_fact = delta_lit
            .atom
            .to_fact()
            .expect("induced updates are ground");
        for positive_head in [true, false] {
            // positive head ⇐ same-sign body occurrence; negative head ⇐
            // opposite sign (Def. 4 / Def. 5 polarity rules).
            let occ_sign = if positive_head {
                delta_lit.positive
            } else {
                !delta_lit.positive
            };
            for (rule, _, occ) in db.rules().body_occurrences(delta_lit.atom.pred, occ_sign) {
                let rule = rule.rename_apart();
                let body_atom = &rule.body[occ.position].atom;
                let Some(mut binding) = match_atom(body_atom, &delta_fact).map(|s| {
                    let mut b = Subst::new();
                    b.try_union(&s);
                    b
                }) else {
                    continue;
                };
                let residue = rule.body_without(occ.position);
                let residue_interp: &dyn Interp = if positive_head {
                    &generator
                } else {
                    current.as_ref()
                };
                let mut produced: Vec<Fact> = Vec::new();
                solve_conjunction(residue_interp, &residue, &mut binding, &mut |s| {
                    if let Some(head) = s.ground_atom(&rule.head) {
                        produced.push(head);
                    }
                    true
                });
                for head in produced {
                    let flipped = if positive_head {
                        !current.contains(&head)
                    } else {
                        current.contains(&head) && !generator.holds(&head)
                    };
                    if flipped {
                        let lit = Literal::new(positive_head, head.to_atom());
                        if known.insert(lit.clone()) {
                            queue.push_back(lit);
                        }
                    }
                }
            }
        }
    }

    stats.new_materializations += generator.materialization_count();
    CheckReport {
        satisfied: violations.is_empty(),
        violations,
        reads: Vec::new(),
        read_patterns: Vec::new(),
        stats,
    }
}

/// Number of induced updates the interleaved method would compute for a
/// transaction (exposed separately for experiment E3).
pub fn count_induced_updates(db: &Database, tx: &Transaction) -> usize {
    interleaved_check(db, tx).stats.delta.answers
}

/// Baseline C: Lloyd–Topor-style trigger enumeration.
///
/// Identical compile phase to the main checker, but the trigger of each
/// update constraint is enumerated against the *updated state* (positive
/// triggers) or the *current state* (negative triggers) without filtering
/// for actual change — `¬new(U,L) ∨ new(U,s(C))`. "The resulting loss in
/// efficiency is often considerable" (§3.2).
pub fn lloyd_topor_check(db: &Database, tx: &Transaction) -> CheckReport {
    let checker = Checker::new(db);
    let literals: Vec<Literal> = tx.updates.iter().map(|u| u.to_literal()).collect();
    let compiled = checker.compile(&literals);

    let mut stats = CheckStats {
        potential_updates: compiled.potential.len(),
        update_constraints: compiled.update_constraints.len(),
        ..CheckStats::default()
    };

    let (adds, dels) = tx.net_effect(db.facts());
    if adds.is_empty() && dels.is_empty() {
        return CheckReport {
            satisfied: true,
            violations: Vec::new(),
            reads: Vec::new(),
            read_patterns: Vec::new(),
            stats,
        };
    }
    let current = db.model();
    let updated = OverlayEngine::updated(db.facts(), db.rules(), adds, dels);

    let mut groups: HashMap<String, Vec<&crate::checker::UpdateConstraint>> = HashMap::new();
    for uc in &compiled.update_constraints {
        groups.entry(pattern_key(&uc.trigger)).or_default().push(uc);
    }
    stats.trigger_groups = groups.len();

    let mut violations = Vec::new();
    let mut verdict_cache: HashMap<Rq, bool> = HashMap::new();
    // Trigger-key order, so the violation list (user-visible through the
    // report) never depends on the group map's iteration order.
    let mut keyed: Vec<(&String, &Vec<&crate::checker::UpdateConstraint>)> =
        groups.iter().collect();
    keyed.sort_by(|a, b| a.0.cmp(b.0));
    for (_, members) in keyed {
        let representative = &members[0].trigger;
        let answers = enumerate_new_answers(&updated, current.as_ref(), representative);
        stats.delta.answers += answers.len();
        for answer in answers {
            let fact = answer.atom.to_fact().expect("answers are ground");
            for uc in members {
                let Some(theta) = match_atom(&uc.trigger.atom, &fact) else {
                    continue;
                };
                let ground = uc.instance.apply(&theta);
                let holds = match verdict_cache.get(&ground) {
                    Some(&v) => {
                        stats.instances_shared += 1;
                        v
                    }
                    None => {
                        stats.instances_evaluated += 1;
                        let v = satisfies_closed(&updated, &ground);
                        verdict_cache.insert(ground.clone(), v);
                        v
                    }
                };
                if !holds {
                    violations.push(Violation {
                        constraint: db.constraints()[uc.constraint].name.clone(),
                        culprit: Some(answer.clone()),
                        instance: ground,
                    });
                }
            }
        }
    }

    stats.new_materializations = updated.materialization_count();
    CheckReport {
        satisfied: violations.is_empty(),
        violations,
        reads: Vec::new(),
        read_patterns: Vec::new(),
        stats,
    }
}

/// `new`-based trigger enumeration: all instances of the pattern true in
/// the relevant state, not only the changed ones.
fn enumerate_new_answers(
    updated: &OverlayEngine<'_>,
    current: &Model,
    pattern: &Literal,
) -> Vec<Literal> {
    let bound: Vec<Option<Sym>> = pattern.atom.args.iter().map(|t| t.as_const()).collect();
    let mut out = Vec::new();
    let state: &dyn Interp = if pattern.positive { updated } else { current };
    state.scan(pattern.atom.pred, &bound, &mut |args| {
        let f = Fact {
            pred: pattern.atom.pred,
            args: args.to_vec(),
        };
        if match_atom(&pattern.atom, &f).is_some() {
            out.push(Literal::new(pattern.positive, f.to_atom()));
        }
        true
    });
    out
}

/// Run every method on the same input and assert verdict agreement —
/// used by tests and the property suite.
pub fn verdicts_agree(db: &Database, tx: &Transaction) -> Result<bool, String> {
    let main = Checker::new(db).check(tx).satisfied;
    let full = full_recheck(db, tx).satisfied;
    let inter = interleaved_check(db, tx).satisfied;
    let lt = lloyd_topor_check(db, tx).satisfied;
    if main == full && main == inter && main == lt {
        Ok(main)
    } else {
        Err(format!(
            "verdicts diverge on {tx:?}: two-phase={main} full={full} interleaved={inter} lloyd-topor={lt}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::Update;
    use uniform_logic::parse_literal;

    fn upd(src: &str) -> Update {
        Update::from_literal(&parse_literal(src).unwrap()).unwrap()
    }

    fn db(src: &str) -> Database {
        let d = Database::parse(src).unwrap();
        assert!(d.is_consistent());
        d
    }

    const UNIVERSITY: &str = "
        emp(a). emp(b). dept(d). assign(a,d). assign(b,d).
        works(X) :- assign(X,Y), dept(Y).
        idle(X) :- emp(X), not works(X).
        constraint busy: forall X: idle(X) -> false.
        constraint assigned_depts: forall X, Y: assign(X,Y) -> dept(Y).
    ";

    #[test]
    fn all_methods_agree_on_university() {
        let d = db(UNIVERSITY);
        for update in [
            "assign(c,d)",     // violates nothing? c not emp; assigned_depts ok
            "emp(c)",          // c becomes idle → violation
            "not assign(a,d)", // a becomes idle → violation
            "not dept(d)",     // everyone idle + dangling assigns → violation
            "assign(a,e)",     // e is not a dept → violation
            "not emp(b)",      // fine
        ] {
            let tx = Transaction::single(upd(update));
            verdicts_agree(&d, &tx).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn all_methods_agree_on_transactions() {
        let d = db(UNIVERSITY);
        let txs = vec![
            Transaction::new(vec![upd("emp(c)"), upd("assign(c,d)")]),
            Transaction::new(vec![upd("not dept(d)"), upd("dept(e)")]),
            Transaction::new(vec![upd("emp(c)")]),
            Transaction::new(vec![upd("emp(c)"), upd("not emp(c)")]),
        ];
        for tx in txs {
            verdicts_agree(&d, &tx).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn interleaved_computes_irrelevant_induced_updates() {
        // §3.2 drawback 1: rule r(X) ← q(X,Y) ∧ p(Y,Z) with no constraint
        // on r. The interleaved method still derives every r(X).
        let mut src = String::from(
            "r(X) :- q(X,Y), p(Y,Z).\nconstraint c: forall X, Y: p(X,Y) -> pbase(X).\npbase(a).\n",
        );
        for i in 0..20 {
            src.push_str(&format!("q(x{i}, a).\n"));
        }
        let d = db(&src);
        let tx = Transaction::single(upd("p(a,b)"));
        let inter = interleaved_check(&d, &tx);
        assert!(inter.satisfied);
        // 1 (p-insertion) + 20 induced r-facts.
        assert_eq!(inter.stats.delta.answers, 21);
        // The two-phase checker never enumerates them: no constraint
        // mentions r, so no update constraint has an r trigger.
        let rep = Checker::new(&d).check(&tx);
        assert!(rep.satisfied);
        assert_eq!(rep.stats.delta.answers, 1, "stats: {:?}", rep.stats);
    }

    #[test]
    fn lloyd_topor_evaluates_unchanged_triggers() {
        // The potential update r(X) is a nonground trigger. All ten r
        // instances already hold in D; inserting p(a,b) changes none of
        // them. `delta` enumerates nothing, `new` enumerates all ten
        // (§3.2: "The resulting loss in efficiency is often considerable").
        let mut src = String::from(
            "r(X) :- q(X,Y), p(Y,Z).\nconstraint c: forall X: r(X) -> rbase(X).\np(a,c).\n",
        );
        for i in 0..10 {
            src.push_str(&format!("q(x{i}, a). rbase(x{i}).\n"));
        }
        let d = db(&src);
        let tx = Transaction::single(upd("p(a,b)"));
        let lt = lloyd_topor_check(&d, &tx);
        assert!(lt.satisfied);
        assert_eq!(lt.stats.delta.answers, 10, "stats: {:?}", lt.stats);
        assert_eq!(lt.stats.instances_evaluated, 10);
        let main = Checker::new(&d).check(&tx);
        assert!(main.satisfied);
        // delta finds the base p-insertion while descending but no changed
        // r instance — so no simplified instance is evaluated at all.
        assert_eq!(main.stats.instances_evaluated, 0, "stats: {:?}", main.stats);
    }

    #[test]
    fn full_recheck_evaluates_everything() {
        let d = db(UNIVERSITY);
        let rep = full_recheck(&d, &Transaction::single(upd("emp(c)")));
        assert!(!rep.satisfied);
        assert_eq!(
            rep.stats.instances_evaluated, 2,
            "both constraints evaluated"
        );
    }

    #[test]
    fn deletion_cascades_agree() {
        let d = db("
            d(k). other(z).
            b(X) :- d(X).
            c(X) :- d(X).
            a(X) :- b(X), c(X).
            constraint keep: forall X: other(X) -> true.
            constraint needs_a: forall X: d(X) -> a(X).
            constraint a_support: forall X: a(X) -> d(X).
        ");
        for update in ["not d(k)", "d(j)"] {
            let tx = Transaction::single(upd(update));
            verdicts_agree(&d, &tx).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
