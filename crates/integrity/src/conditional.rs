//! Conditional updates — the generalization §3.2 closes with ("The method
//! described here for single-fact Updates has been defined for more
//! general Updates, such as transactions and conditional Updates",
//! worked out in BRY 87).
//!
//! A conditional update `Lθ for every answer θ of Q` pairs an update
//! *pattern* `L` (a literal, possibly with variables) with a conjunctive
//! *condition* `Q` that binds them: inserting `audit(X) where emp(X),
//! not cleared(X)` inserts one `audit` fact per uncleared employee.
//!
//! The two-phase architecture extends unchanged: Def. 5 never looks at
//! answer substitutions, so the potential updates of the *pattern* cover
//! the potential updates of every ground instance the condition can
//! produce. Update constraints are therefore compiled from the pattern
//! alone — once per conditional-update *shape*, before any fact is read —
//! and only the expansion into a concrete [`Transaction`] touches the
//! database.

use crate::checker::{CheckReport, Checker, CompiledCheck};
use std::collections::HashSet;
use std::fmt;
use uniform_datalog::{solve_conjunction, Interp, Transaction, Update};
use uniform_logic::{parse_literal, parse_query, Literal, LogicError, RuleError, Subst, Sym};

/// An update pattern guarded by a conjunctive condition.
///
/// Safety mirrors the range restriction of §2: every variable of the
/// pattern, and every variable of a negative condition literal, must
/// occur in a positive condition literal. This guarantees the expansion
/// is a finite set of ground updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionalUpdate {
    literal: Literal,
    condition: Vec<Literal>,
}

impl ConditionalUpdate {
    /// Build a conditional update, validating safety.
    pub fn new(literal: Literal, condition: Vec<Literal>) -> Result<ConditionalUpdate, LogicError> {
        let bound: HashSet<Sym> = condition
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.vars().collect::<Vec<_>>())
            .collect();
        let check = |vars: Vec<Sym>| -> Result<(), LogicError> {
            for v in vars {
                if !bound.contains(&v) {
                    return Err(LogicError::Rule(RuleError {
                        var: v,
                        rule: display(&literal, &condition),
                    }));
                }
            }
            Ok(())
        };
        check(literal.vars().collect())?;
        for l in condition.iter().filter(|l| !l.positive) {
            check(l.vars().collect())?;
        }
        Ok(ConditionalUpdate { literal, condition })
    }

    /// Parse from `"<literal> where <cond1>, <cond2>, ..."`; the `where`
    /// clause may be omitted when the literal is ground.
    ///
    /// ```
    /// use uniform_integrity::ConditionalUpdate;
    /// let cu = ConditionalUpdate::parse("not enrolled(X, cs) where failed(X)").unwrap();
    /// assert_eq!(cu.to_string(), "not enrolled(X,cs) where failed(X)");
    /// ```
    pub fn parse(src: &str) -> Result<ConditionalUpdate, LogicError> {
        let (head, cond) = match find_where(src) {
            Some(at) => (&src[..at], Some(&src[at + WHERE.len()..])),
            None => (src, None),
        };
        let literal = parse_literal(head.trim().trim_end_matches('.'))?;
        let condition = match cond {
            Some(q) => parse_query(q.trim())?,
            None => Vec::new(),
        };
        ConditionalUpdate::new(literal, condition)
    }

    /// The update pattern.
    pub fn literal(&self) -> &Literal {
        &self.literal
    }

    /// The conjunctive condition.
    pub fn condition(&self) -> &[Literal] {
        &self.condition
    }

    /// Expand into a concrete transaction by evaluating the condition
    /// against `interp` (the canonical model of the current state):
    /// one ground update per distinct answer.
    pub fn expand(&self, interp: &dyn Interp) -> Transaction {
        let mut updates = Vec::new();
        let mut seen: HashSet<uniform_logic::Fact> = HashSet::new();
        let mut subst = Subst::new();
        solve_conjunction(interp, &self.condition, &mut subst, &mut |s| {
            if let Some(fact) = s.ground_atom(&self.literal.atom) {
                if seen.insert(fact.clone()) {
                    updates.push(if self.literal.positive {
                        Update::insert(fact)
                    } else {
                        Update::delete(fact)
                    });
                }
            }
            true
        });
        Transaction::new(updates)
    }
}

impl fmt::Display for ConditionalUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&display(&self.literal, &self.condition))
    }
}

const WHERE: &str = " where ";

/// Position of the top-level ` where ` keyword, if any. The surface
/// syntax has no string literals and `where` is not a legal predicate
/// position followed by a space-separated literal, so a plain substring
/// scan suffices.
fn find_where(src: &str) -> Option<usize> {
    src.find(WHERE)
}

fn display(literal: &Literal, condition: &[Literal]) -> String {
    use std::fmt::Write;
    let mut out = literal.to_string();
    if !condition.is_empty() {
        out.push_str(" where ");
        for (i, l) in condition.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{l}");
        }
    }
    out
}

impl Checker<'_> {
    /// Compile the update constraints of a conditional update from its
    /// pattern alone — no fact access, cacheable per shape (§3.3.1).
    /// The pattern is renamed apart so its variables cannot be captured
    /// by constraint variables during relevance unification.
    pub fn compile_conditional(&self, cu: &ConditionalUpdate) -> CompiledCheck {
        let mut map = std::collections::HashMap::new();
        let fresh = uniform_logic::rename_literal(cu.literal(), &mut map);
        self.compile(std::slice::from_ref(&fresh))
    }

    /// Check a conditional update: compile from the pattern, expand the
    /// condition against the current canonical model, evaluate.
    pub fn check_conditional(&self, cu: &ConditionalUpdate) -> CheckReport {
        let compiled = self.compile_conditional(cu);
        let tx = self.expand_conditional(cu);
        self.evaluate(&compiled, &tx)
    }

    /// The concrete transaction a conditional update denotes on the
    /// current state.
    pub fn expand_conditional(&self, cu: &ConditionalUpdate) -> Transaction {
        let model = self.model();
        cu.expand(model.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::Database;

    fn db(src: &str) -> Database {
        let db = Database::parse(src).unwrap();
        assert!(db.is_consistent(), "fixtures must start consistent");
        db
    }

    #[test]
    fn parse_round_trip() {
        let cu = ConditionalUpdate::parse("audit(X) where emp(X), not cleared(X)").unwrap();
        assert_eq!(cu.to_string(), "audit(X) where emp(X), not cleared(X)");
        assert!(cu.literal().positive);
        assert_eq!(cu.condition().len(), 2);
    }

    #[test]
    fn parse_ground_without_condition() {
        let cu = ConditionalUpdate::parse("p(a)").unwrap();
        assert!(cu.condition().is_empty());
        let cu2 = ConditionalUpdate::parse("not p(a).").unwrap();
        assert!(!cu2.literal().positive);
    }

    #[test]
    fn unsafe_pattern_rejected() {
        // X unbound by any positive condition literal.
        let err = ConditionalUpdate::parse("p(X)").unwrap_err();
        assert!(err.to_string().contains("range-restricted"), "{err}");
        let err2 = ConditionalUpdate::parse("p(X) where not q(X)").unwrap_err();
        assert!(err2.to_string().contains("range-restricted"), "{err2}");
        // Negative condition literal with an unbound variable.
        let err3 = ConditionalUpdate::parse("p(a) where q(X), not r(Y)").unwrap_err();
        assert!(err3.to_string().contains('Y'), "{err3}");
    }

    #[test]
    fn expansion_enumerates_answers() {
        let d = db("emp(a). emp(b). cleared(b).");
        let cu = ConditionalUpdate::parse("audit(X) where emp(X), not cleared(X)").unwrap();
        let tx = cu.expand(d.model().as_ref());
        assert_eq!(tx.updates.len(), 1);
        assert_eq!(tx.updates[0].to_literal().to_string(), "audit(a)");
    }

    #[test]
    fn expansion_deduplicates() {
        // Two condition answers projecting onto the same update.
        let d = db("assign(a, d1). assign(a, d2).");
        let cu = ConditionalUpdate::parse("busy(X) where assign(X, Y)").unwrap();
        let tx = cu.expand(d.model().as_ref());
        assert_eq!(tx.updates.len(), 1);
    }

    #[test]
    fn expansion_over_derived_predicates() {
        let d = db("leads(a, sales). member(X, Y) :- leads(X, Y).");
        let cu = ConditionalUpdate::parse("veteran(X) where member(X, Y)").unwrap();
        let tx = cu.expand(d.model().as_ref());
        assert_eq!(tx.updates.len(), 1);
        assert_eq!(tx.updates[0].fact.to_string(), "veteran(a)");
    }

    #[test]
    fn ground_update_without_condition_expands_to_itself() {
        let d = db("");
        let cu = ConditionalUpdate::parse("p(a)").unwrap();
        let tx = cu.expand(d.model().as_ref());
        assert_eq!(tx.updates.len(), 1);
    }

    #[test]
    fn empty_condition_answers_yield_empty_transaction() {
        let d = db("constraint c: forall X: audit(X) -> false.");
        let cu = ConditionalUpdate::parse("audit(X) where emp(X)").unwrap();
        let checker = Checker::new(&d);
        let report = checker.check_conditional(&cu);
        assert!(report.satisfied, "no emp facts, nothing to insert");
    }

    #[test]
    fn conditional_check_accepts_and_rejects() {
        let d = db("
            emp(a). emp(b). senior(b).
            constraint only_seniors: forall X: bonus(X) -> senior(X).
        ");
        let checker = Checker::new(&d);
        let ok = ConditionalUpdate::parse("bonus(X) where senior(X)").unwrap();
        assert!(checker.check_conditional(&ok).satisfied);
        let bad = ConditionalUpdate::parse("bonus(X) where emp(X)").unwrap();
        let report = checker.check_conditional(&bad);
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "only_seniors");
    }

    #[test]
    fn conditional_deletion_checked() {
        let d = db("
            emp(a). badge(a).
            constraint badged: forall X: emp(X) -> badge(X).
        ");
        let checker = Checker::new(&d);
        let bad = ConditionalUpdate::parse("not badge(X) where emp(X)").unwrap();
        assert!(!checker.check_conditional(&bad).satisfied);
        // Deleting the employee first (same conditional shape) is fine
        // when done together in one expanded transaction semantics is not
        // expressible here; deleting badges of *former* employees is.
        let d2 = db("badge(a). badge(b). emp(b). constraint badged: forall X: emp(X) -> badge(X).");
        let checker2 = Checker::new(&d2);
        let ok = ConditionalUpdate::parse("not badge(X) where badge(X), not emp(X)").unwrap();
        assert!(checker2.check_conditional(&ok).satisfied);
    }

    #[test]
    fn compile_is_fact_free_and_reusable() {
        // Compile once against an empty fact base; evaluate twice against
        // different states.
        let mut d = db("constraint c: forall X: audit(X) -> logged(X).");
        let cu = ConditionalUpdate::parse("audit(X) where emp(X)").unwrap();
        let compiled = Checker::new(&d).compile_conditional(&cu);
        assert_eq!(compiled.update_constraints.len(), 1);

        d.insert_fact(&uniform_logic::Fact::parse_like("emp", &["a"]));
        let checker = Checker::new(&d);
        let tx = checker.expand_conditional(&cu);
        assert!(
            !checker.evaluate(&compiled, &tx).satisfied,
            "audit(a) lacks logged(a)"
        );

        d.insert_fact(&uniform_logic::Fact::parse_like("logged", &["a"]));
        let checker = Checker::new(&d);
        let tx = checker.expand_conditional(&cu);
        assert!(checker.evaluate(&compiled, &tx).satisfied);
    }

    #[test]
    fn induced_updates_of_expanded_instances_checked() {
        // The condition produces student insertions; the rule induces
        // enrolled insertions which violate the constraint (§3.2 example
        // reached through a conditional update).
        let d = db("
            applicant(jack).
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: enrolled(X, cs) -> attends(X, ddb).
        ");
        let checker = Checker::new(&d);
        let cu = ConditionalUpdate::parse("student(X) where applicant(X)").unwrap();
        let report = checker.check_conditional(&cu);
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "cdb");
    }

    #[test]
    fn verdict_matches_oracle_on_examples() {
        let d = db("
            emp(a). emp(b). cleared(b). badge(a). badge(b).
            vetted(X) :- emp(X), cleared(X).
            constraint badged: forall X: emp(X) -> badge(X).
            constraint audited_cleared: forall X: audit(X) -> cleared(X).
        ");
        let checker = Checker::new(&d);
        for src in [
            "audit(X) where emp(X)",
            "audit(X) where vetted(X)",
            "not badge(X) where cleared(X)",
            "not emp(X) where emp(X), not cleared(X)",
            "emp(c)",
        ] {
            let cu = ConditionalUpdate::parse(src).unwrap();
            let fast = checker.check_conditional(&cu).satisfied;
            let tx = checker.expand_conditional(&cu);
            let mut copy = d.clone();
            for u in &tx.updates {
                copy.apply(u).unwrap();
            }
            assert_eq!(fast, copy.is_consistent(), "divergence on `{src}`");
        }
    }
}
