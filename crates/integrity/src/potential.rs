//! Potential updates (Def. 5): the compile-time approximation of induced
//! updates.
//!
//! "A depends on L if and only if A directly depends on L or on a literal
//! that depends on L. Every literal which depends on U is a potential
//! update induced by U." Potential updates are computed **without
//! considering any answer substitution** — i.e. without touching the fact
//! base — which is what allows the whole first phase of the method to run
//! at compile time (§3.2). Subsumed literals are discarded during the
//! closure; §3.3.1 notes this is *necessary* for termination on recursive
//! rules and desirable otherwise.

use uniform_datalog::RuleSet;
use uniform_logic::{unify_atoms, Literal, MinimalLiteralSet};

/// Result of the potential-update computation.
#[derive(Clone, Debug)]
pub struct PotentialUpdates {
    /// Subsumption-minimal set of potential update literals, including
    /// the seed update itself (the paper's `{U} ∪ {L | dependent(L, U)}`).
    pub literals: Vec<Literal>,
    /// Number of direct-dependent derivation steps performed (for the E7
    /// experiment).
    pub steps: usize,
    /// Whether the safety bound was hit (should never happen: the pattern
    /// space modulo renaming is finite).
    pub truncated: bool,
}

/// Literals directly depending on `lit` (one rule application, Def. 5).
pub fn direct_dependents(rules: &RuleSet, lit: &Literal) -> Vec<Literal> {
    let mut out = Vec::new();
    // Same-sign body occurrence L' unifiable with L: the head may become
    // true (potential insertion A).
    for (rule, _, occ) in rules.body_occurrences(lit.atom.pred, lit.positive) {
        let renamed = rule.rename_apart();
        let body_atom = &renamed.body[occ.position].atom;
        if let Some(mgu) = unify_atoms(body_atom, &lit.atom) {
            out.push(Literal::new(true, mgu.apply_atom(&renamed.head)));
        }
    }
    // Opposite-sign occurrence L' unifiable with the complement of L: a
    // derivation may break (potential deletion ¬A).
    for (rule, _, occ) in rules.body_occurrences(lit.atom.pred, !lit.positive) {
        let renamed = rule.rename_apart();
        let body_atom = &renamed.body[occ.position].atom;
        if let Some(mgu) = unify_atoms(body_atom, &lit.atom) {
            out.push(Literal::new(false, mgu.apply_atom(&renamed.head)));
        }
    }
    out
}

/// Transitive closure of [`direct_dependents`] from `seed`, minimal under
/// subsumption. `limit` bounds the number of worklist expansions as a
/// safety net.
pub fn potential_updates(rules: &RuleSet, seed: &Literal, limit: usize) -> PotentialUpdates {
    let mut set = MinimalLiteralSet::new();
    set.insert(seed.clone());
    let mut queue: Vec<Literal> = vec![seed.clone()];
    let mut steps = 0;
    let mut truncated = false;
    while let Some(lit) = queue.pop() {
        if steps >= limit {
            truncated = true;
            break;
        }
        steps += 1;
        // Skip literals that have been evicted by a more general one in
        // the meantime; the general literal covers their dependents.
        if !set.contains_subsumer_of(&lit) {
            continue;
        }
        for dep in direct_dependents(rules, &lit) {
            if set.insert(dep.clone()) {
                queue.push(dep);
            }
        }
    }
    PotentialUpdates {
        literals: set.into_vec(),
        steps,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{literal_subsumes, parse_literal, parse_rule, Sym};

    fn rules(srcs: &[&str]) -> RuleSet {
        RuleSet::new(srcs.iter().map(|s| parse_rule(s).unwrap()).collect()).unwrap()
    }

    fn potentials(rule_srcs: &[&str], seed: &str) -> Vec<String> {
        let rs = rules(rule_srcs);
        let p = potential_updates(&rs, &parse_literal(seed).unwrap(), 10_000);
        assert!(!p.truncated);
        let mut out: Vec<String> = p.literals.iter().map(canonical).collect();
        out.sort();
        out
    }

    /// Render with variables canonicalized for stable assertions.
    fn canonical(l: &Literal) -> String {
        crate::delta::pattern_key(l)
    }

    #[test]
    fn paper_example_positive_dependency() {
        // §3.2: with r(X) ← q(X,Y) ∧ p(Y,Z), the update p(a,b) has
        // potential update r(X).
        let out = potentials(&["r(X) :- q(X,Y), p(Y,Z)."], "p(a,b)");
        assert_eq!(out, vec!["+p,c:a,c:b", "+r,v0"]);
    }

    #[test]
    fn deletion_produces_negative_dependents() {
        let out = potentials(&["r(X) :- q(X,Y), p(Y,Z)."], "not p(a,b)");
        assert_eq!(out, vec!["-p,c:a,c:b", "-r,v0"]);
    }

    #[test]
    fn negative_body_literal_flips_polarity() {
        // present(X) ← emp(X) ∧ ¬absent(X): inserting absent(a) may
        // delete present instances; deleting absent(a) may insert them.
        // The negative body literal shares the head variable, so the
        // constant propagates into the dependent pattern.
        let out = potentials(&["present(X) :- emp(X), not absent(X)."], "absent(a)");
        assert_eq!(out, vec!["+absent,c:a", "-present,c:a"]);
        let out2 = potentials(&["present(X) :- emp(X), not absent(X)."], "not absent(a)");
        assert_eq!(out2, vec!["+present,c:a", "-absent,c:a"]);
    }

    #[test]
    fn chains_propagate() {
        let out = potentials(&["b(X) :- a(X).", "c(X) :- b(X).", "d(X) :- c(X)."], "a(k)");
        assert_eq!(out, vec!["+a,c:k", "+b,c:k", "+c,c:k", "+d,c:k"]);
    }

    #[test]
    fn recursion_terminates_via_subsumption() {
        // §3.3.1: "In order to stop the generation of potential updates in
        // presence of recursive rules, it is necessary to discard subsumed
        // literals while constructing the set."
        let out = potentials(
            &["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), edge(Y,Z)."],
            "edge(a,b)",
        );
        // tc(a,b) from the base rule, then tc(a,Z), then tc(X,Z) — each
        // generation subsumes the previous; the fixpoint is tc(X,Z).
        assert_eq!(out, vec!["+edge,c:a,c:b", "+tc,v0,v1"]);
    }

    #[test]
    fn nonlinear_recursion_terminates() {
        let out = potentials(
            &["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), tc(Y,Z)."],
            "edge(a,b)",
        );
        assert_eq!(out, vec!["+edge,c:a,c:b", "+tc,v0,v1"]);
    }

    #[test]
    fn mutual_recursion_terminates() {
        let out = potentials(
            &[
                "even(X) :- zero(X).",
                "even(X) :- succ(Y,X), odd(Y).",
                "odd(X) :- succ(Y,X), even(Y).",
            ],
            "succ(n0,n1)",
        );
        assert_eq!(out, vec!["+even,v0", "+odd,v0", "+succ,c:n0,c:n1"]);
    }

    #[test]
    fn constants_propagate_when_possible() {
        // Head reuses the matched variable: the constant flows through.
        let out = potentials(&["boss(X) :- leads(X,Y)."], "leads(ann,sales)");
        assert_eq!(out, vec!["+boss,c:ann", "+leads,c:ann,c:sales"]);
    }

    #[test]
    fn irrelevant_rules_ignored() {
        let out = potentials(&["r(X) :- q(X)."], "p(a)");
        assert_eq!(out, vec!["+p,c:a"]);
    }

    #[test]
    fn direct_dependents_fresh_variables() {
        let rs = rules(&["r(X) :- q(X,Y), p(Y,Z)."]);
        let deps = direct_dependents(&rs, &parse_literal("p(a,b)").unwrap());
        assert_eq!(deps.len(), 1);
        let dep = &deps[0];
        assert_eq!(dep.atom.pred, Sym::new("r"));
        // The head variable is fresh, not literally `X`.
        assert!(dep.atom.args[0].is_var());
        assert_ne!(dep.atom.args[0], uniform_logic::Term::from_name("X"));
        // And the generalization subsumes any ground instance.
        assert!(literal_subsumes(dep, &parse_literal("r(zzz)").unwrap()));
    }

    #[test]
    fn seed_always_included() {
        let out = potentials(&[], "p(a)");
        assert_eq!(out, vec!["+p,c:a"]);
    }
}
