//! Rule updates, "treated like conditional updates" (§3.2).
//!
//! Adding a rule `H ← B` acts like the conditional insertion of every
//! instance of `H` whose body newly holds; removing it like the
//! conditional deletion of the instances it alone derived. The two-phase
//! architecture carries over:
//!
//! * **Compile** (fact-free): the direct change is confined to instances
//!   of the head — insertions for an addition, deletions for a removal
//!   (stratification forbids the negative self-dependencies that could
//!   flip the head the other way). Seeding the Def. 5 closure with `+H`
//!   (resp. `¬H`) over the *post-update* rule set covers every literal
//!   the change can reach, and Def. 3/6 turn those into update
//!   constraints exactly as for fact updates. "When defining induced or
//!   potential updates one has to respect modifications to the rule set
//!   as well" (§3.2) — hence the post-update set: insertions propagate
//!   through rules present afterwards, and a deletion propagating
//!   through the removed rule itself is already an instance of the seed.
//! * **Evaluate**: induced updates are enumerated per trigger pattern by
//!   diffing the canonical models before and after the rule change (the
//!   before-model is the database's cached one), and only the relevant
//!   simplified instances are evaluated against the new state — never
//!   the full constraint set.
//!
//! The full re-check of every constraint on the candidate state — what a
//! system without this method must do, and what the façade used to do —
//! is retained in [`crate::baselines`] style as the experiment baseline
//! (E8).

use crate::checker::{
    CheckOptions, CheckReport, CheckStats, CompiledCheck, UpdateConstraint, Violation,
};
use crate::delta::pattern_key;
use crate::potential::potential_updates;
use crate::relevance::RelevanceIndex;
use crate::simplify::{simplified_instances, SimplifiedInstance};
use std::collections::HashMap;
use std::fmt;
use uniform_datalog::{
    satisfies_closed, Database, Interp as _, Model, RuleSet, StratificationError,
};
use uniform_logic::{match_atom, Fact, Literal, Rq};

/// A change to the rule set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleUpdate {
    /// Add a deduction rule.
    Add(uniform_logic::Rule),
    /// Remove a deduction rule (matched by its printed form).
    Remove(uniform_logic::Rule),
}

impl RuleUpdate {
    /// The rule being added or removed.
    pub fn rule(&self) -> &uniform_logic::Rule {
        match self {
            RuleUpdate::Add(r) | RuleUpdate::Remove(r) => r,
        }
    }

    /// Is this an addition?
    pub fn is_addition(&self) -> bool {
        matches!(self, RuleUpdate::Add(_))
    }

    /// The seed literal of the potential-update closure: `+H` for an
    /// addition, `¬H` for a removal. Renamed apart so the head's
    /// variables cannot be captured by constraint variables during
    /// relevance unification.
    pub fn seed(&self) -> Literal {
        let mut map = std::collections::HashMap::new();
        uniform_logic::rename_literal(
            &Literal::new(self.is_addition(), self.rule().head.clone()),
            &mut map,
        )
    }

    /// The rule set after applying this update to `rules`. `None` for a
    /// removal whose rule is not present (nothing to do), an error when
    /// an addition breaks stratification.
    pub fn rules_after(&self, rules: &RuleSet) -> Result<Option<RuleSet>, StratificationError> {
        match self {
            RuleUpdate::Add(r) => {
                let printed = r.to_string();
                if rules.rules().iter().any(|x| x.to_string() == printed) {
                    return Ok(None);
                }
                let mut all = rules.rules().to_vec();
                all.push(r.clone());
                RuleSet::new(all).map(Some)
            }
            RuleUpdate::Remove(r) => {
                let printed = r.to_string();
                let remaining: Vec<uniform_logic::Rule> = rules
                    .rules()
                    .iter()
                    .filter(|x| x.to_string() != printed)
                    .cloned()
                    .collect();
                if remaining.len() == rules.len() {
                    return Ok(None);
                }
                Ok(Some(RuleSet::new(remaining).expect(
                    "removing a rule from a stratified set cannot break stratification",
                )))
            }
        }
    }
}

impl fmt::Display for RuleUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleUpdate::Add(r) => write!(f, "+[{r}]"),
            RuleUpdate::Remove(r) => write!(f, "-[{r}]"),
        }
    }
}

/// Output of the compile phase for a rule update: the post-update rule
/// set plus the update constraints — computed without any fact access.
#[derive(Clone, Debug)]
pub struct CompiledRuleUpdate {
    /// The rule set after the change; `None` when the update is a no-op
    /// (adding a present rule, removing an absent one).
    pub rules_after: Option<RuleSet>,
    /// Potential updates and update constraints seeded from the head.
    pub check: CompiledCheck,
}

/// Incremental integrity checking across rule additions and removals.
pub struct RuleUpdateChecker<'a> {
    db: &'a Database,
    index: RelevanceIndex,
    options: CheckOptions,
}

impl<'a> RuleUpdateChecker<'a> {
    pub fn new(db: &'a Database) -> RuleUpdateChecker<'a> {
        RuleUpdateChecker::with_options(db, CheckOptions::default())
    }

    pub fn with_options(db: &'a Database, options: CheckOptions) -> RuleUpdateChecker<'a> {
        RuleUpdateChecker {
            db,
            index: RelevanceIndex::build(db.constraints()),
            options,
        }
    }

    /// Phase 1: compile the update constraints of a rule update. Touches
    /// rules and constraints only.
    pub fn compile(&self, update: &RuleUpdate) -> Result<CompiledRuleUpdate, StratificationError> {
        let Some(rules_after) = update.rules_after(self.db.rules())? else {
            return Ok(CompiledRuleUpdate {
                rules_after: None,
                check: CompiledCheck::default(),
            });
        };
        let seeds = potential_updates(&rules_after, &update.seed(), self.options.potential_limit);
        let mut update_constraints = Vec::new();
        for lit in &seeds.literals {
            for SimplifiedInstance {
                constraint,
                trigger,
                instance,
            } in simplified_instances(&self.index, self.db.constraints(), lit)
            {
                update_constraints.push(UpdateConstraint {
                    constraint,
                    trigger,
                    instance,
                });
            }
        }
        Ok(CompiledRuleUpdate {
            rules_after: Some(rules_after),
            check: CompiledCheck {
                potential: seeds.literals,
                update_constraints,
                truncated: seeds.truncated,
            },
        })
    }

    /// Phase 2: enumerate induced updates per trigger pattern by diffing
    /// the canonical models across the rule change, and evaluate the
    /// relevant simplified instances against the new state.
    pub fn evaluate(&self, compiled: &CompiledRuleUpdate) -> CheckReport {
        let mut stats = CheckStats {
            potential_updates: compiled.check.potential.len(),
            update_constraints: compiled.check.update_constraints.len(),
            ..CheckStats::default()
        };
        let Some(rules_after) = &compiled.rules_after else {
            return CheckReport {
                satisfied: true,
                violations: Vec::new(),
                reads: Vec::new(),
                read_patterns: Vec::new(),
                stats,
            };
        };
        if compiled.check.update_constraints.is_empty() {
            // No constraint is relevant to anything the rule change can
            // reach: accepted without computing the new model.
            return CheckReport {
                satisfied: true,
                violations: Vec::new(),
                reads: Vec::new(),
                read_patterns: Vec::new(),
                stats,
            };
        }

        let before = self.db.model();
        let after = Model::compute(self.db.facts(), rules_after);
        stats.new_materializations = 1;

        let mut groups: HashMap<String, Vec<&UpdateConstraint>> = HashMap::new();
        for uc in &compiled.check.update_constraints {
            groups.entry(pattern_key(&uc.trigger)).or_default().push(uc);
        }
        stats.trigger_groups = groups.len();

        // Deterministic group order (HashMap iteration order is not).
        let mut ordered_groups: Vec<(&String, &Vec<&UpdateConstraint>)> = groups.iter().collect();
        ordered_groups.sort_by_key(|(key, _)| key.as_str());

        let mut delta_memo: HashMap<String, Vec<Fact>> = HashMap::new();
        let mut verdict_cache: HashMap<Rq, bool> = HashMap::new();
        let mut violations = Vec::new();
        'outer: for (_, members) in ordered_groups {
            let representative = &members[0].trigger;
            let key = pattern_key(representative);
            let answers = match delta_memo.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    stats.delta.patterns_evaluated += 1;
                    let answers = model_diff(representative, before.as_ref(), &after);
                    stats.delta.answers += answers.len();
                    delta_memo.insert(key, answers.clone());
                    answers
                }
            };
            for fact in &answers {
                for uc in members {
                    let Some(theta) = match_atom(&uc.trigger.atom, fact) else {
                        continue;
                    };
                    let ground = uc.instance.apply(&theta);
                    debug_assert!(ground.is_closed(), "instance not closed: {ground}");
                    let holds = if self.options.share_evaluations {
                        match verdict_cache.get(&ground) {
                            Some(&v) => {
                                stats.instances_shared += 1;
                                v
                            }
                            None => {
                                stats.instances_evaluated += 1;
                                let v = satisfies_closed(&after, &ground);
                                verdict_cache.insert(ground.clone(), v);
                                v
                            }
                        }
                    } else {
                        stats.instances_evaluated += 1;
                        satisfies_closed(&after, &ground)
                    };
                    if !holds {
                        violations.push(Violation {
                            constraint: self.db.constraints()[uc.constraint].name.clone(),
                            culprit: Some(Literal::new(
                                members[0].trigger.positive,
                                fact.to_atom(),
                            )),
                            instance: ground,
                        });
                        if self.options.fail_fast {
                            break 'outer;
                        }
                    }
                }
            }
        }

        CheckReport {
            satisfied: violations.is_empty(),
            violations,
            reads: Vec::new(),
            read_patterns: Vec::new(),
            stats,
        }
    }

    /// Both phases.
    pub fn check(&self, update: &RuleUpdate) -> Result<CheckReport, StratificationError> {
        let compiled = self.compile(update)?;
        Ok(self.evaluate(&compiled))
    }
}

/// Ground instances of `pattern` whose truth flips across the rule
/// change: present in `after` but not `before` for positive patterns,
/// the converse for negative ones.
fn model_diff(pattern: &Literal, before: &Model, after: &Model) -> Vec<Fact> {
    let (scan_in, absent_from) = if pattern.positive {
        (after, before)
    } else {
        (before, after)
    };
    let bound: Vec<Option<uniform_logic::Sym>> =
        pattern.atom.args.iter().map(|t| t.as_const()).collect();
    let mut out = Vec::new();
    scan_in.scan(pattern.atom.pred, &bound, &mut |args| {
        let f = Fact {
            pred: pattern.atom.pred,
            args: args.to_vec(),
        };
        if match_atom(&pattern.atom, &f).is_some() && !absent_from.contains(&f) {
            out.push(f);
        }
        true
    });
    out
}

/// Convenience: compile and evaluate a rule update against `db` with
/// default options.
pub fn check_rule_update(
    db: &Database,
    update: &RuleUpdate,
) -> Result<CheckReport, StratificationError> {
    RuleUpdateChecker::new(db).check(update)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_rule;

    fn db(src: &str) -> Database {
        let db = Database::parse(src).unwrap();
        assert!(db.is_consistent(), "fixtures must start consistent");
        db
    }

    fn add(src: &str) -> RuleUpdate {
        RuleUpdate::Add(parse_rule(src).unwrap())
    }

    fn remove(src: &str) -> RuleUpdate {
        RuleUpdate::Remove(parse_rule(src).unwrap())
    }

    #[test]
    fn addition_deriving_violation_rejected() {
        let d = db("
            employee(ann).
            constraint nss: forall X: subordinate(X, X) -> false.
        ");
        let report = check_rule_update(&d, &add("subordinate(X, X) :- employee(X).")).unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "nss");
    }

    #[test]
    fn benign_addition_accepted() {
        let d = db("
            leads(ann, sales).
            constraint nss: forall X: subordinate(X, X) -> false.
        ");
        let report = check_rule_update(&d, &add("boss(X) :- leads(X, Y).")).unwrap();
        assert!(report.satisfied);
        // No constraint mentions boss: accepted without materializing.
        assert_eq!(report.stats.new_materializations, 0);
    }

    #[test]
    fn removal_stripping_support_rejected() {
        let d = db("
            leads(ann, sales). employee(ann).
            member(X, Y) :- leads(X, Y).
            constraint emp_member: forall X: employee(X) -> (exists Y: member(X, Y)).
        ");
        let report = check_rule_update(&d, &remove("member(X, Y) :- leads(X, Y).")).unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "emp_member");
        assert_eq!(
            report.violations[0].culprit.as_ref().unwrap().to_string(),
            "not member(ann,sales)"
        );
    }

    #[test]
    fn removal_with_explicit_backup_accepted() {
        let d = db("
            leads(ann, sales). employee(ann). member(ann, sales).
            member(X, Y) :- leads(X, Y).
            constraint emp_member: forall X: employee(X) -> (exists Y: member(X, Y)).
        ");
        let report = check_rule_update(&d, &remove("member(X, Y) :- leads(X, Y).")).unwrap();
        assert!(report.satisfied, "{:?}", report.violations);
    }

    #[test]
    fn addition_through_negation_deletes_downstream() {
        // Adding a works rule *removes* idle facts (idle is defined by
        // negation over works); the constraint requires idlers to exist.
        let d = db("
            emp(a).
            idle(X) :- emp(X), not works(X).
            constraint someone_idle: exists X: idle(X).
        ");
        let report = check_rule_update(&d, &add("works(X) :- emp(X).")).unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "someone_idle");
    }

    #[test]
    fn removal_through_negation_inserts_downstream() {
        // Removing the works rule makes everyone idle; the constraint
        // forbids idle employees.
        let d = db("
            emp(a). contract(a).
            works(X) :- contract(X).
            idle(X) :- emp(X), not works(X).
            constraint no_idlers: forall X: idle(X) -> false.
        ");
        let report = check_rule_update(&d, &remove("works(X) :- contract(X).")).unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "no_idlers");
    }

    #[test]
    fn unstratifiable_addition_is_an_error() {
        let d = db("emp(a).");
        let err = check_rule_update(&d, &add("odd(X) :- emp(X), not odd(X)."));
        assert!(err.is_err());
    }

    #[test]
    fn noop_updates_accepted_without_work() {
        let d = db("
            leads(a, b).
            member(X, Y) :- leads(X, Y).
            constraint c: forall X, Y: member(X, Y) -> leads(X, Y).
        ");
        // Adding a rule that is already present.
        let report = check_rule_update(&d, &add("member(X, Y) :- leads(X, Y).")).unwrap();
        assert!(report.satisfied);
        assert_eq!(report.stats.update_constraints, 0);
        // Removing a rule that does not exist.
        let report = check_rule_update(&d, &remove("ghost(X) :- leads(X, Y).")).unwrap();
        assert!(report.satisfied);
        assert_eq!(report.stats.update_constraints, 0);
    }

    #[test]
    fn recursive_rule_addition_checked() {
        let d = db("
            edge(a, b). edge(b, c). edge(c, a).
            tc(X, Y) :- edge(X, Y).
            constraint noloop: forall X: tc(X, X) -> false.
        ");
        // Adding the transitive rule closes the cycle: tc(a,a) appears.
        let report = check_rule_update(&d, &add("tc(X, Z) :- tc(X, Y), edge(Y, Z).")).unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.violations[0].constraint, "noloop");
    }

    #[test]
    fn compile_is_fact_free() {
        let d = db("constraint c: forall X: loud(X) -> warned(X).");
        let checker = RuleUpdateChecker::new(&d);
        let compiled = checker.compile(&add("loud(X) :- speaker(X).")).unwrap();
        assert_eq!(compiled.check.update_constraints.len(), 1);
        // Facts appear only at evaluation time.
        let mut d2 = d.clone();
        d2.insert_fact(&Fact::parse_like("speaker", &["s"]));
        let checker2 = RuleUpdateChecker::new(&d2);
        assert!(!checker2.evaluate(&compiled).satisfied);
        d2.insert_fact(&Fact::parse_like("warned", &["s"]));
        let checker3 = RuleUpdateChecker::new(&d2);
        assert!(checker3.evaluate(&compiled).satisfied);
    }

    #[test]
    fn agrees_with_full_recheck_oracle() {
        let base = "
            emp(a). emp(b). dept(d). assign(a, d). contract(a).
            works(X) :- contract(X).
            member(X, Y) :- assign(X, Y), dept(Y).
            idle(X) :- emp(X), not works(X).
            constraint busy: forall X, Y: member(X, Y) -> emp(X).
            constraint lazy_bound: forall X: idle(X) -> emp(X).
            constraint someone_works: exists X: works(X).
        ";
        let d = db(base);
        let updates = vec![
            add("works(X) :- assign(X, Y)."),
            add("member(X, d) :- contract(X)."),
            add("member(ghost, X) :- dept(X)."),
            remove("works(X) :- contract(X)."),
            remove("member(X, Y) :- assign(X, Y), dept(Y)."),
            remove("idle(X) :- emp(X), not works(X)."),
        ];
        for u in updates {
            let fast = check_rule_update(&d, &u).unwrap().satisfied;
            let rules_after = u.rules_after(d.rules()).unwrap();
            let slow = match rules_after {
                None => true,
                Some(rs) => {
                    let mut copy = d.clone();
                    copy.set_rules(rs);
                    copy.is_consistent()
                }
            };
            assert_eq!(fast, slow, "divergence on {u}");
        }
    }
}
