//! Systematic method-agreement matrix: several schema archetypes, the
//! full update grid over their predicates, every method compared on
//! every update. Complements the random property oracle with exhaustive
//! small grids.

use uniform_datalog::{Database, Transaction, Update};
use uniform_integrity::verdicts_agree;
use uniform_logic::parse_literal;

fn upd(src: &str) -> Update {
    Update::from_literal(&parse_literal(src).unwrap()).unwrap()
}

/// For every predicate shape and every constant pair, try insertion and
/// deletion, asserting method agreement.
fn exhaust(db: &Database, preds: &[(&str, usize)]) {
    let consts = ["a", "b", "c"];
    for &(pred, arity) in preds {
        let arg_combos: Vec<Vec<&str>> = match arity {
            1 => consts.iter().map(|c| vec![*c]).collect(),
            2 => consts
                .iter()
                .flat_map(|c1| consts.iter().map(move |c2| vec![*c1, *c2]))
                .collect(),
            _ => unreachable!("grid supports arity 1-2"),
        };
        for args in arg_combos {
            for sign in ["", "not "] {
                let lit = format!("{sign}{pred}({})", args.join(","));
                let tx = Transaction::single(upd(&lit));
                verdicts_agree(db, &tx).unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }
}

#[test]
fn relational_schema_grid() {
    let db = Database::parse(
        "
        p(a). q(a). s(a). s(b).
        constraint inc: forall X: p(X) -> q(X).
        constraint tot: forall X: q(X) -> (exists Y: r(X, Y)) | s(X).
        constraint excl: forall X: ~(p(X) & bad(X)).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    exhaust(&db, &[("p", 1), ("q", 1), ("s", 1), ("r", 2), ("bad", 1)]);
}

#[test]
fn deductive_schema_grid() {
    let db = Database::parse(
        "
        q(X) :- p(X), base(X).
        t(X) :- q(X), not excused(X).
        base(a). base(b). p(a). blessed(a).
        constraint topped: forall X: t(X) -> blessed(X).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    exhaust(
        &db,
        &[("p", 1), ("base", 1), ("excused", 1), ("blessed", 1)],
    );
}

#[test]
fn recursive_schema_grid() {
    let db = Database::parse(
        "
        tc(X,Y) :- edge(X,Y).
        tc(X,Z) :- tc(X,Y), edge(Y,Z).
        edge(a,b). edge(b,c).
        constraint acyclic: forall X: tc(X,X) -> false.
        constraint grounded: forall X, Y: edge(X, Y) -> node(X).
        node(a). node(b). node(c).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    exhaust(&db, &[("edge", 2), ("node", 1)]);
}

#[test]
fn two_member_transactions_agree() {
    let db = Database::parse(
        "
        q(X) :- p(X), base(X).
        base(a). base(b).
        constraint c: forall X: q(X) -> ok(X).
        ok(a).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    let literals = [
        "p(a)",
        "p(b)",
        "not p(a)",
        "base(c)",
        "not base(a)",
        "ok(b)",
        "not ok(a)",
    ];
    for l1 in &literals {
        for l2 in &literals {
            let tx = Transaction::new(vec![upd(l1), upd(l2)]);
            verdicts_agree(&db, &tx).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn existential_constraints_under_deletion_grid() {
    let db = Database::parse(
        "
        constraint somebody: exists X: emp(X).
        constraint coverage: forall X: dept(X) -> (exists Y: emp(Y) & works(Y, X)).
        emp(a). emp(b). dept(c). works(a, c). works(b, c).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    exhaust(&db, &[("emp", 1), ("works", 2), ("dept", 1)]);
}

#[test]
fn self_join_constraints() {
    // Constraints with repeated predicate occurrences — multiple
    // simplified instances per update.
    let db = Database::parse(
        "
        constraint sym: forall X, Y: r(X, Y) -> r(Y, X).
        constraint antiself: forall X: r(X, X) -> false.
        r(a, b). r(b, a).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    exhaust(&db, &[("r", 2)]);
}
