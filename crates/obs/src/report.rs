//! `ObsReport`: the single export surface over the registry.
//!
//! The report is a plain value — sorted counter/gauge `(name, value)`
//! pairs plus histogram snapshots — with a deterministic `Display`
//! table and a hand-rolled JSON renderer/parser (the environment is
//! offline; no serde). Two reports built from identical metric states
//! render byte-identically, which is what lets `tests/determinism.rs`
//! fold a report into its digest.

use std::fmt;

use crate::hist::HistogramSnapshot;

/// A point-in-time export of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Sorted `(dotted name, value)` for counters and gauges.
    pub counters: Vec<(String, u64)>,
    /// Sorted `(dotted name, snapshot)` for histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ObsReport {
    /// Normalise ordering so construction order can't leak into output.
    pub fn sorted(mut self) -> ObsReport {
        self.counters.sort();
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// Look up one counter/gauge value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up one histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Render as JSON. Histogram buckets are exported sparsely as
    /// `[bucket_index, count]` pairs so the payload stays small.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), value));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, snap)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{{\"buckets\":[", json_string(name)));
            for (j, (bucket, count)) in snap.nonzero().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bucket},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parse a report previously rendered with [`ObsReport::to_json`].
    /// Accepts exactly that shape; used by the CI obs smoke to prove
    /// the export is machine-readable.
    pub fn parse_json(input: &str) -> Result<ObsReport, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let report = parser.report()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(report)
    }
}

impl fmt::Display for ObsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        writeln!(f, "== obs report ==")?;
        for (name, value) in &self.counters {
            writeln!(f, "{name:<width$}  {value}")?;
        }
        for (name, snap) in &self.histograms {
            writeln!(f, "{name:<width$}  {snap}")?;
        }
        Ok(())
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal recursive-descent parser for the report's own JSON subset:
/// objects, arrays, strings with basic escapes, unsigned integers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn report(&mut self) -> Result<ObsReport, String> {
        self.expect(b'{')?;
        let mut report = ObsReport::default();
        loop {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "counters" => report.counters = self.counters()?,
                "histograms" => report.histograms = self.histograms()?,
                other => return Err(format!("unknown top-level key `{other}`")),
            }
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
        Ok(report.sorted())
    }

    fn counters(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        loop {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(out);
            }
            let name = self.string()?;
            self.expect(b':')?;
            let value = self.number()?;
            out.push((name, value));
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
    }

    fn histograms(&mut self) -> Result<Vec<(String, HistogramSnapshot)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        loop {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(out);
            }
            let name = self.string()?;
            self.expect(b':')?;
            self.expect(b'{')?;
            let key = self.string()?;
            if key != "buckets" {
                return Err(format!("expected `buckets`, got `{key}`"));
            }
            self.expect(b':')?;
            self.expect(b'[')?;
            let mut snap = HistogramSnapshot {
                buckets: vec![0; crate::hist::HIST_BUCKETS],
            };
            loop {
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    break;
                }
                self.expect(b'[')?;
                let bucket = self.number()? as usize;
                self.expect(b',')?;
                let count = self.number()?;
                self.expect(b']')?;
                if bucket >= snap.buckets.len() {
                    return Err(format!("bucket index {bucket} out of range"));
                }
                snap.buckets[bucket] = count;
                if self.peek() == Some(b',') {
                    self.pos += 1;
                }
            }
            self.expect(b'}')?;
            out.push((name, snap));
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HIST_BUCKETS;

    fn sample() -> ObsReport {
        let mut hist = HistogramSnapshot {
            buckets: vec![0; HIST_BUCKETS],
        };
        hist.buckets[0] = 3;
        hist.buckets[11] = 2;
        ObsReport {
            counters: vec![
                ("txn.commits.admitted".to_string(), 41),
                ("cache.plan.hits".to_string(), 7),
            ],
            histograms: vec![("commit.latency".to_string(), hist)],
        }
        .sorted()
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let a = sample().to_string();
        let b = sample().to_string();
        assert_eq!(a, b);
        let hits = a.find("cache.plan.hits").unwrap();
        let admitted = a.find("txn.commits.admitted").unwrap();
        assert!(hits < admitted, "counters must render sorted:\n{a}");
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = report.to_json();
        let parsed = ObsReport::parse_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = ObsReport::default();
        let parsed = ObsReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ObsReport::parse_json("").is_err());
        assert!(ObsReport::parse_json("{\"counters\":{").is_err());
        assert!(ObsReport::parse_json("{\"wat\":{}}").is_err());
        let good = sample().to_json();
        assert!(ObsReport::parse_json(&format!("{good}x")).is_err());
    }

    #[test]
    fn lookup_helpers() {
        let report = sample();
        assert_eq!(report.counter("cache.plan.hits"), Some(7));
        assert_eq!(report.counter("nope"), None);
        assert_eq!(report.histogram("commit.latency").unwrap().count(), 5);
    }
}
