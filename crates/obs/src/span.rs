//! Structured spans: open/close event pairs in a bounded ring buffer.
//!
//! A span is opened with [`crate::Obs::span`] and closed when the
//! returned [`SpanGuard`] drops. Each open and each close appends one
//! [`SpanEvent`] to the recorder's ring buffer; when the ring is full
//! the oldest event is discarded and counted in [`SpanRecorder::dropped`].
//!
//! Parentage is tracked with a per-thread stack, so a span opened while
//! another span from the same recorder is live on the same thread gets
//! that span as its parent. Cross-thread parent links are deliberately
//! not inferred — a commit admitted on thread A and applied on thread B
//! shows up as two roots, which is the truth.
//!
//! Timestamp semantics: an *open* event's `nanos` is the clock reading
//! at open (`0` under [`crate::NullClock`]); a *close* event's `nanos`
//! is the span's **duration** (`0` under `NullClock`). No wall-clock
//! value is recorded unless the clock is enabled.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::clock::Clock;
use crate::hist::Hist;

/// Default ring-buffer capacity (events, i.e. opens + closes).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One open or close record in the span ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique (per recorder) span id shared by the open/close pair.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Ordinal of the recording thread (stable within a process run,
    /// but dependent on thread scheduling — never digest it).
    pub thread: u64,
    /// Span name, e.g. `"commit"` or `"query.execute"`.
    pub name: &'static str,
    /// Variant tag: the open carries the caller's tag (e.g. `"certain"`),
    /// the close carries the path set via [`SpanGuard::set_path`] (or
    /// the open tag if no path was set).
    pub tag: Option<&'static str>,
    /// `false` for the open event, `true` for the close.
    pub close: bool,
    /// Open: timestamp at open. Close: span duration. Zero when the
    /// clock is disabled.
    pub nanos: u64,
}

static RECORDER_IDS: AtomicUsize = AtomicUsize::new(0);
static THREAD_ORDINALS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// (recorder instance id, span id) stack for parentage.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORDINAL: u64 = THREAD_ORDINALS.fetch_add(1, Ordering::Relaxed);
}

/// The bounded ring of recent [`SpanEvent`]s plus span-id allocation.
pub struct SpanRecorder {
    /// Distinguishes this recorder's frames on the thread-local stack
    /// when several `Obs` instances are live in one process.
    instance: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanEvent>>,
}

impl SpanRecorder {
    pub fn new() -> SpanRecorder {
        SpanRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            instance: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(2),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the ring, oldest event first.
    pub fn recent(&self) -> Vec<SpanEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    fn push(&self, ev: SpanEvent) {
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Open a span: allocate an id, record the open event, push this
    /// span onto the calling thread's parent stack.
    pub(crate) fn open(
        &self,
        name: &'static str,
        tag: Option<&'static str>,
        nanos: u64,
    ) -> (u64, Option<u64>, u64) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let thread = THREAD_ORDINAL.with(|t| *t);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(inst, _)| *inst == self.instance)
                .map(|(_, id)| *id);
            stack.push((self.instance, id));
            parent
        });
        self.push(SpanEvent {
            id,
            parent,
            thread,
            name,
            tag,
            close: false,
            nanos,
        });
        (id, parent, thread)
    }

    /// Close a span: pop it from the thread's parent stack and record
    /// the close event.
    pub(crate) fn close(
        &self,
        id: u64,
        parent: Option<u64>,
        thread: u64,
        name: &'static str,
        tag: Option<&'static str>,
        nanos: u64,
    ) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|(inst, sid)| *inst == self.instance && *sid == id)
            {
                stack.remove(pos);
            }
        });
        self.push(SpanEvent {
            id,
            parent,
            thread,
            name,
            tag,
            close: true,
            nanos,
        });
    }
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::new()
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.ring.lock().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// RAII handle for a live span; records the close event on drop and,
/// when a histogram was attached, records the span duration into it.
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    clock: &'a dyn Clock,
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: &'static str,
    tag: Option<&'static str>,
    path: Option<&'static str>,
    start: Option<u64>,
    hist: Option<Hist>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn open(
        recorder: &'a SpanRecorder,
        clock: &'a dyn Clock,
        name: &'static str,
        tag: Option<&'static str>,
        hist: Option<Hist>,
    ) -> SpanGuard<'a> {
        let start = clock.now_nanos();
        let (id, parent, thread) = recorder.open(name, tag, start.unwrap_or(0));
        SpanGuard {
            recorder,
            clock,
            id,
            parent,
            thread,
            name,
            tag,
            path: None,
            start,
            hist,
        }
    }

    /// This span's id (for tests and cross-referencing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record which path the operation took (e.g. `"cache_hit"` vs
    /// `"eval"`); shows up as the close event's tag.
    pub fn set_path(&mut self, path: &'static str) {
        self.path = Some(path);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let duration = match self.start {
            Some(start) => self
                .clock
                .now_nanos()
                .map(|end| end.saturating_sub(start))
                .unwrap_or(0),
            None => 0,
        };
        if let Some(hist) = &self.hist {
            hist.record(duration);
        }
        self.recorder.close(
            self.id,
            self.parent,
            self.thread,
            self.name,
            self.path.or(self.tag),
            duration,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NullClock;

    fn open<'a>(rec: &'a SpanRecorder, name: &'static str) -> SpanGuard<'a> {
        SpanGuard::open(rec, &NullClock, name, None, None)
    }

    #[test]
    fn open_close_pairs_and_nesting() {
        let rec = SpanRecorder::new();
        {
            let _outer = open(&rec, "outer");
            let _inner = open(&rec, "inner");
        }
        let events = rec.recent();
        assert_eq!(events.len(), 4);
        let outer_open = &events[0];
        let inner_open = &events[1];
        assert_eq!(outer_open.name, "outer");
        assert_eq!(outer_open.parent, None);
        assert_eq!(inner_open.parent, Some(outer_open.id));
        // inner closes before outer
        assert!(events[2].close && events[2].id == inner_open.id);
        assert!(events[3].close && events[3].id == outer_open.id);
        assert!(events.iter().all(|e| e.nanos == 0));
    }

    #[test]
    fn path_overrides_close_tag() {
        let rec = SpanRecorder::new();
        {
            let mut sp = SpanGuard::open(&rec, &NullClock, "query", Some("certain"), None);
            sp.set_path("cache_hit");
        }
        let events = rec.recent();
        assert_eq!(events[0].tag, Some("certain"));
        assert_eq!(events[1].tag, Some("cache_hit"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = SpanRecorder::with_capacity(4);
        for _ in 0..6 {
            let _sp = open(&rec, "x");
        }
        assert_eq!(rec.recent().len(), 4);
        assert_eq!(rec.dropped(), 8);
    }

    #[test]
    fn two_recorders_do_not_cross_parent() {
        let rec_a = SpanRecorder::new();
        let rec_b = SpanRecorder::new();
        let _a = open(&rec_a, "a");
        let _b = open(&rec_b, "b");
        assert_eq!(rec_b.recent()[0].parent, None);
    }

    #[test]
    fn hist_records_duration_on_drop() {
        let rec = SpanRecorder::new();
        let reg = crate::registry::MetricsRegistry::new();
        let hist = reg.histogram("lat");
        {
            let _sp = SpanGuard::open(&rec, &NullClock, "x", None, Some(hist.clone()));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.buckets[0], 1); // NullClock → bucket 0
    }
}
