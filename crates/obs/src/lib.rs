//! `uniform-obs`: the unified observability layer for the uniform
//! pipeline — one [`MetricsRegistry`] of named counters/gauges/
//! histograms, one structured-span ring, one [`ObsReport`] export.
//!
//! An [`Obs`] instance bundles the three together with a pluggable
//! [`Clock`]. Subsystems resolve their metric handles once at
//! construction ([`Obs::counter`] etc.) and then bump lock-free
//! atomics on the hot path; spans open with [`Obs::span`] and close on
//! drop. With the [`NullClock`] (the default — see [`Obs::from_env`])
//! no timer is ever read, so every exported value is a pure function of
//! the operation sequence and determinism digests stay bit-identical
//! regardless of thread count.
//!
//! Metric names are dotted paths in a single global namespace per
//! `Obs`, e.g. `txn.conflicts.key`, `cache.certain.carried_forward`,
//! `repair.sat.conflicts`. The full table lives in the repository
//! README under "Observability".

mod clock;
mod hist;
mod registry;
mod report;
mod span;

use std::sync::Arc;

pub use clock::{Clock, NullClock, WallClock};
pub use hist::{
    bucket_floor, bucket_of, fmt_nanos, Hist, Histogram, HistogramSnapshot, HIST_BUCKETS,
};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use report::ObsReport;
pub use span::{SpanEvent, SpanGuard, SpanRecorder, DEFAULT_RING_CAPACITY};

/// Environment variable gating wall-clock timing: `UNIFORM_OBS=1`
/// selects [`WallClock`], anything else [`NullClock`].
pub const OBS_ENV: &str = "UNIFORM_OBS";

/// One observability domain: registry + span ring + clock. Create one
/// per database instance and share it (`Arc<Obs>`) with every
/// subsystem that reports into it.
pub struct Obs {
    registry: MetricsRegistry,
    spans: SpanRecorder,
    clock: Box<dyn Clock>,
    clock_enabled: bool,
}

impl Obs {
    /// An `Obs` with the given clock.
    pub fn with_clock<C: Clock>(clock: C) -> Obs {
        let clock_enabled = clock.is_enabled();
        Obs {
            registry: MetricsRegistry::new(),
            spans: SpanRecorder::new(),
            clock: Box::new(clock),
            clock_enabled,
        }
    }

    /// An `Obs` with timing off ([`NullClock`]): counts only, fully
    /// deterministic.
    pub fn null() -> Obs {
        Obs::with_clock(NullClock)
    }

    /// [`WallClock`] iff the environment has `UNIFORM_OBS=1`, else
    /// [`NullClock`]. Counts and spans are recorded either way; only
    /// timing (histogram buckets > 0, span durations) needs the env
    /// opt-in.
    pub fn from_env() -> Obs {
        match std::env::var(OBS_ENV) {
            Ok(v) if v == "1" => Obs::with_clock(WallClock::new()),
            _ => Obs::null(),
        }
    }

    /// Shorthand for `Arc::new(Obs::from_env())`.
    pub fn shared_from_env() -> Arc<Obs> {
        Arc::new(Obs::from_env())
    }

    /// Is the clock producing timestamps? (`false` under [`NullClock`].)
    pub fn clock_enabled(&self) -> bool {
        self.clock_enabled
    }

    /// Resolve (create or look up) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Resolve the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Resolve the histogram `name`.
    pub fn histogram(&self, name: &str) -> Hist {
        self.registry.histogram(name)
    }

    /// Open an untagged span; it closes (and records) when the guard
    /// drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard::open(&self.spans, &*self.clock, name, None, None)
    }

    /// Open a span carrying a variant tag (e.g. `"certain"`).
    pub fn span_tagged(&self, name: &'static str, tag: &'static str) -> SpanGuard<'_> {
        SpanGuard::open(&self.spans, &*self.clock, name, Some(tag), None)
    }

    /// Open a tagged span whose duration is also recorded into `hist`
    /// on close.
    pub fn span_timed(
        &self,
        name: &'static str,
        tag: Option<&'static str>,
        hist: Hist,
    ) -> SpanGuard<'_> {
        SpanGuard::open(&self.spans, &*self.clock, name, tag, Some(hist))
    }

    /// A copy of the span ring, oldest first.
    pub fn recent_events(&self) -> Vec<SpanEvent> {
        self.spans.recent()
    }

    /// Span events evicted from the ring so far.
    pub fn dropped_events(&self) -> u64 {
        self.spans.dropped()
    }

    /// Export every registered metric as a sorted [`ObsReport`].
    pub fn report(&self) -> ObsReport {
        ObsReport {
            counters: self.registry.counters(),
            histograms: self.registry.histograms(),
        }
        .sorted()
    }

    /// Direct registry access (rarely needed; prefer the typed
    /// resolvers above).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::null()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("registry", &self.registry)
            .field("spans", &self.spans)
            .field("clock_enabled", &self.clock_enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_obs_is_deterministic_end_to_end() {
        let run = || {
            let obs = Obs::null();
            let commits = obs.counter("txn.commits.admitted");
            let lat = obs.histogram("commit.latency");
            for _ in 0..5 {
                let _sp = obs.span_timed("commit", Some("queued"), lat.clone());
                commits.incr();
            }
            obs.report().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_covers_counters_gauges_histograms() {
        let obs = Obs::null();
        obs.counter("a.count").add(2);
        obs.gauge("b.level").set(9);
        obs.histogram("c.lat").record(0);
        let report = obs.report();
        assert_eq!(report.counter("a.count"), Some(2));
        assert_eq!(report.counter("b.level"), Some(9));
        assert_eq!(report.histogram("c.lat").unwrap().count(), 1);
        let parsed = ObsReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn spans_nest_through_obs() {
        let obs = Obs::null();
        {
            let _commit = obs.span("commit");
            let _check = obs.span("commit.check");
        }
        let events = obs.recent_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].parent, Some(events[0].id));
    }

    #[test]
    fn null_clock_keeps_histograms_in_bucket_zero() {
        let obs = Obs::null();
        let lat = obs.histogram("x.lat");
        {
            let _sp = obs.span_timed("x", None, lat.clone());
            std::thread::yield_now();
        }
        let snap = lat.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.buckets[0], 1);
        assert!(!obs.clock_enabled());
    }

    #[test]
    fn wall_clock_obs_times_spans() {
        let obs = Obs::with_clock(WallClock::new());
        assert!(obs.clock_enabled());
        let lat = obs.histogram("x.lat");
        {
            let _sp = obs.span_timed("x", None, lat.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = lat.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.buckets[0], 0, "2ms must not land in the zero bucket");
    }
}
