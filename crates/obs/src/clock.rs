//! The pluggable time source behind every span duration and latency
//! histogram.
//!
//! Everything in `uniform-obs` that *times* an operation goes through a
//! [`Clock`], and the clock is chosen once per [`crate::Obs`] instance.
//! Two implementations ship:
//!
//! * [`WallClock`] — monotonic wall time ([`std::time::Instant`]),
//!   the operational configuration;
//! * [`NullClock`] — timing off. No timer is ever read (the cost of a
//!   span shrinks to the ring-buffer push, and a histogram `record`
//!   to one relaxed increment of bucket 0), and **no wall-clock value
//!   can reach any user-visible output**. This is the contract
//!   `tests/determinism.rs` relies on: under a `NullClock`, counter
//!   values and histogram bucket counts are pure functions of the
//!   operation sequence, so digests stay bit-identical across
//!   `UNIFORM_THREADS=1` vs `8` and across processes.

use std::time::Instant;

/// A monotonic nanosecond source, or the deliberate absence of one.
///
/// # Contract
///
/// * `now_nanos` returns `None` when timing is disabled. Callers must
///   degrade to a zero duration (never sample a fallback timer): the
///   [`NullClock`] guarantee is that *no* nondeterministic value enters
///   any metric.
/// * When `Some`, values are monotonic non-decreasing within one clock
///   instance and measured from an arbitrary epoch; only differences
///   are meaningful.
pub trait Clock: Send + Sync + 'static {
    /// Monotonic nanoseconds since an arbitrary epoch, or `None` when
    /// timing is off.
    fn now_nanos(&self) -> Option<u64>;

    /// Does this clock produce timestamps at all? `false` lets hot
    /// paths skip both timer reads entirely.
    fn is_enabled(&self) -> bool {
        self.now_nanos().is_some()
    }
}

/// Timing disabled: [`Clock::now_nanos`] is always `None` and no timer
/// is read. Span events still record (with zero timestamps and zero
/// durations) and histograms still count (every recording lands in
/// bucket 0), so *counts* remain fully observable and fully
/// deterministic — see the module docs for the determinism contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    #[inline]
    fn now_nanos(&self) -> Option<u64> {
        None
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Monotonic wall time, measured from the clock's construction.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    #[inline]
    fn now_nanos(&self) -> Option<u64> {
        Some(self.epoch.elapsed().as_nanos() as u64)
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_never_ticks() {
        assert_eq!(NullClock.now_nanos(), None);
        assert!(!NullClock.is_enabled());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos().unwrap();
        let b = c.now_nanos().unwrap();
        assert!(b >= a);
        assert!(c.is_enabled());
    }
}
