//! Log-bucketed latency histograms with *fixed* bucket boundaries.
//!
//! HDR-style precision is traded for determinism: bucket `i` covers the
//! nanosecond range `[2^(i-1), 2^i)` (bucket 0 holds exact zeros, the
//! [`crate::NullClock`] case), so the bucket a value lands in is a pure
//! function of the value — no dynamic resizing, no rescaling, and two
//! histograms that saw the same durations always produce bit-identical
//! digests. The top bucket absorbs everything from ~9.1 minutes up.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: zeros, then one power-of-two rung per bit up to
/// `2^(HIST_BUCKETS-1)` ns (~9.1 min), with the last rung unbounded.
pub const HIST_BUCKETS: usize = 40;

/// The bucket a nanosecond value lands in: its bit length, clamped.
/// Zero → bucket 0; `[2^(i-1), 2^i)` → bucket `i`.
#[inline]
pub fn bucket_of(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive lower bound of bucket `i`, in nanoseconds.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// One latency histogram: `HIST_BUCKETS` relaxed atomic counters.
///
/// All increments use `Ordering::Relaxed`: each bucket is monotonic on
/// its own and no cross-bucket invariant is asserted on the live
/// atomics — consistency questions are answered on a
/// [`snapshot`](Histogram::snapshot), which is a plain value.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one duration (relaxed; lock-free).
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A cheaply clonable handle to a shared [`Histogram`].
#[derive(Clone, Debug)]
pub struct Hist(pub(crate) Arc<Histogram>);

impl Hist {
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.0.record(nanos)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A plain-value copy of a histogram's bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` = recordings in `[bucket_floor(i), bucket_floor(i+1))`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total recordings.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// The upper bound (exclusive, ns) of the bucket where the
    /// cumulative count first reaches `q` of the total — a conservative
    /// quantile estimate. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(bucket_floor(i + 1));
            }
        }
        Some(u64::MAX)
    }
}

/// Render a nanosecond bound compactly (`512ns`, `2µs`, `16ms`, `4s`).
pub fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos}ns"),
        1_000..=999_999 => format!("{}µs", nanos / 1_000),
        1_000_000..=999_999_999 => format!("{}ms", nanos / 1_000_000),
        _ => format!("{}s", nanos / 1_000_000_000),
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = self.count();
        write!(f, "count={count}")?;
        if count == 0 {
            return Ok(());
        }
        if let (Some(p50), Some(p99)) = (self.quantile_bound(0.50), self.quantile_bound(0.99)) {
            write!(f, " p50<{} p99<{}", fmt_nanos(p50), fmt_nanos(p99))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_fixed_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i);
            assert_eq!(bucket_of(bucket_floor(i + 1) - 1).min(HIST_BUCKETS - 1), i);
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(700);
        h.record(1500);
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[bucket_of(700)], 1);
        assert_eq!(s.buckets[bucket_of(1500)], 1);
        assert_eq!(s.nonzero().len(), 3);
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 128)
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile_bound(0.5), Some(128));
        assert!(s.quantile_bound(1.0).unwrap() > 1_000_000);
    }

    #[test]
    fn display_is_compact() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().to_string(), "count=0");
        h.record(3_000);
        let rendered = h.snapshot().to_string();
        assert!(rendered.starts_with("count=1 p50<"), "{rendered}");
    }
}
