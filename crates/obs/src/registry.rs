//! The metrics registry: named atomic counters, gauges and histograms.
//!
//! Registration (creating or looking up a metric by name) takes a
//! `Mutex<BTreeMap>`; it happens once per metric per subsystem, at
//! construction time. The *hot* operations — `Counter::add`,
//! `Gauge::set`, `Hist::record` — are clones of `Arc<AtomicU64>` (or
//! the histogram's atomic array) and never touch the map.
//!
//! # Ordering semantics
//!
//! All atomic operations are `Ordering::Relaxed`. Each metric is
//! individually monotonic (counters) or last-write-wins (gauges), but a
//! registry export is **not** a cross-metric atomic snapshot: two
//! counters bumped together on another thread may be exported with only
//! one increment visible. Subsystems that assert cross-counter
//! invariants (e.g. `admitted + conflicts == submitted`) keep their
//! bumps under the subsystem's own lock and expose a locked `*_stats()`
//! snapshot accessor; the registry view is for rates and totals.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::{Hist, Histogram, HistogramSnapshot};

/// A named monotonic counter handle. Cloning is cheap (one `Arc`).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (a "null" sink, useful
    /// for default-constructed subsystems before obs is threaded in).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins gauge handle (absolute values, e.g. cache
/// entry counts or CoW byte totals sampled at export time).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<Histogram>),
}

/// The registry proper: a name → slot map guarded by a mutex, with all
/// hot-path access going through pre-resolved handles.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Create or look up the counter `name`. Panics if `name` is
    /// already registered as a different metric kind — dotted names are
    /// a global namespace and kind mismatches are programming errors.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Create or look up the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Create or look up the histogram `name`.
    pub fn histogram(&self, name: &str) -> Hist {
        let mut slots = self.slots.lock();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Hist(Arc::new(Histogram::new())))
        {
            Slot::Hist(h) => Hist(Arc::clone(h)),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Sorted `(name, value)` export of every counter and gauge.
    /// Per-metric monotonic reads; see the module docs for why this is
    /// not a cross-metric atomic snapshot.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let slots = self.slots.lock();
        slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Counter(c) | Slot::Gauge(c) => {
                    Some((name.clone(), c.load(Ordering::Relaxed)))
                }
                Slot::Hist(_) => None,
            })
            .collect()
    }

    /// Sorted `(name, snapshot)` export of every histogram.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let slots = self.slots.lock();
        slots
            .iter()
            .filter_map(|(name, slot)| match slot {
                Slot::Hist(h) => Some((name.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.slots.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_storage_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.y");
        let b = reg.counter("x.y");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.counters(), vec![("x.y".to_string(), 4)]);
    }

    #[test]
    fn export_is_sorted_and_merges_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.level").set(7);
        reg.histogram("c.lat").record(100);
        let names: Vec<String> = reg.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.level", "b.count"]);
        let hists = reg.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "c.lat");
        assert_eq!(hists[0].1.count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dual");
        reg.histogram("dual");
    }

    #[test]
    fn detached_handles_count_but_export_nothing() {
        let reg = MetricsRegistry::new();
        let c = Counter::detached();
        c.add(5);
        assert_eq!(c.get(), 5);
        assert!(reg.counters().is_empty());
    }
}
