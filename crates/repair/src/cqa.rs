//! Consistent query answering over minimal repairs.
//!
//! The certain answers of a query over an inconsistent database are the
//! answers true in **every** minimal repair (Arenas–Bertossi–Chomicki).
//! Each repair candidate is evaluated through an
//! [`OverlayEngine`] overlay — the §3.3.2 simulation of the updated
//! state — so no repaired database is ever materialized: the base EDB
//! stays shared, the repair's insertions and deletions ride on top.

use std::collections::BTreeMap;
use uniform_datalog::{all_solutions, satisfies_closed, FactSet, OverlayEngine, RuleSet};
use uniform_logic::{Literal, Rq, Subst, Sym, Term};

use crate::engine::RepairSet;

/// Variables of a conjunctive query, in first-occurrence order (the
/// binding order answers are reported in).
pub(crate) fn query_vars(query: &[Literal]) -> Vec<Sym> {
    let mut vars: Vec<Sym> = Vec::new();
    for l in query {
        for v in l.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// The answers of the conjunctive query `query` that hold in every one
/// of `repairs` applied (as an overlay) to `edb` under `rules`.
/// Answers come back sorted by their rendered bindings, so the output
/// is deterministic across runs, thread counts and processes.
///
/// `repairs` must be non-empty — a consistent state contributes the
/// single empty repair, under which this is ordinary query answering.
pub fn certain_answers(
    edb: &FactSet,
    rules: &RuleSet,
    repairs: &[RepairSet],
    query: &[Literal],
) -> Vec<Vec<(Sym, Sym)>> {
    assert!(
        !repairs.is_empty(),
        "certain answers need at least one repair (the empty repair of a consistent state)"
    );
    // Bindings keyed by their rendered (name-deterministic) form.
    type AnswerMap = BTreeMap<Vec<String>, Vec<(Sym, Sym)>>;
    let vars = query_vars(query);
    let mut certain: Option<AnswerMap> = None;
    for repair in repairs {
        let (adds, dels) = repair.overlay();
        let engine = OverlayEngine::updated(edb, rules, adds, dels);
        let mut answers: AnswerMap = BTreeMap::new();
        for s in all_solutions(&engine, query, &mut Subst::new(), &vars) {
            let binding: Vec<(Sym, Sym)> = vars
                .iter()
                .filter_map(|&v| match s.walk(Term::Var(v)) {
                    Term::Const(c) => Some((v, c)),
                    Term::Var(_) => None,
                })
                .collect();
            let key: Vec<String> = binding
                .iter()
                .map(|(v, c)| format!("{}={}", v.as_str(), c.as_str()))
                .collect();
            answers.insert(key, binding);
        }
        certain = Some(match certain {
            None => answers,
            Some(prev) => prev
                .into_iter()
                .filter(|(k, _)| answers.contains_key(k))
                .collect(),
        });
        if certain.as_ref().is_some_and(|m| m.is_empty()) {
            break;
        }
    }
    certain.unwrap_or_default().into_values().collect()
}

/// Is the closed formula true in every repair?
pub fn certainly_satisfies(edb: &FactSet, rules: &RuleSet, repairs: &[RepairSet], rq: &Rq) -> bool {
    assert!(!repairs.is_empty(), "see certain_answers");
    repairs.iter().all(|repair| {
        let (adds, dels) = repair.overlay();
        let engine = OverlayEngine::updated(edb, rules, adds, dels);
        satisfies_closed(&engine, rq)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::{Database, Update};
    use uniform_logic::{parse_literal, Fact};

    #[test]
    fn empty_repair_is_plain_answering() {
        let db = Database::parse("p(a). p(b). q(X) :- p(X).").unwrap();
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[RepairSet::empty()],
            &[parse_literal("q(X)").unwrap()],
        );
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn intersection_drops_uncertain_answers() {
        let db = Database::parse("p(a). p(b).").unwrap();
        let keep_a = RepairSet::from_ops(vec![Update::delete(Fact::parse_like("p", &["b"]))]);
        let keep_b = RepairSet::from_ops(vec![Update::delete(Fact::parse_like("p", &["a"]))]);
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[keep_a, keep_b],
            &[parse_literal("p(X)").unwrap()],
        );
        assert!(ans.is_empty(), "{ans:?}");
    }

    #[test]
    fn overlay_insertions_count() {
        let db = Database::parse("q(X) :- p(X).").unwrap();
        let r = RepairSet::from_ops(vec![Update::insert(Fact::parse_like("p", &["z"]))]);
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[r],
            &[parse_literal("q(X)").unwrap()],
        );
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0][0].1.as_str(), "z");
    }
}
