//! Consistent query answering over minimal repairs.
//!
//! The certain answers of a query over an inconsistent database are the
//! answers true in **every** minimal repair (Arenas–Bertossi–Chomicki).
//! Each repair candidate is evaluated through an
//! [`OverlayEngine`] overlay — the §3.3.2 simulation of the updated
//! state — so no repaired database is ever materialized: the base EDB
//! stays shared, the repair's insertions and deletions ride on top.

use std::collections::BTreeMap;
use uniform_datalog::{all_solutions, satisfies, FactSet, OverlayEngine, RuleSet};
use uniform_logic::{Literal, Rq, Subst, Sym, Term};

use crate::engine::RepairSet;

/// Variables of a conjunctive query, in first-occurrence order (the
/// binding order answers are reported in).
pub(crate) fn query_vars(query: &[Literal]) -> Vec<Sym> {
    let mut vars: Vec<Sym> = Vec::new();
    for l in query {
        for v in l.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// The answers of the conjunctive query `query` that hold in every one
/// of `repairs` applied (as an overlay) to `edb` under `rules`.
/// Answers come back sorted by their rendered bindings, so the output
/// is deterministic across runs, thread counts and processes.
///
/// `repairs` must be non-empty — a consistent state contributes the
/// single empty repair, under which this is ordinary query answering.
pub fn certain_answers(
    edb: &FactSet,
    rules: &RuleSet,
    repairs: &[RepairSet],
    query: &[Literal],
) -> Vec<Vec<(Sym, Sym)>> {
    certain_answers_bound(
        edb,
        rules,
        repairs,
        query,
        &Subst::new(),
        &query_vars(query),
    )
}

/// [`certain_answers`] parameterized for prepared queries: `init`
/// pre-binds query parameters (evaluation extends it per repair) and
/// `vars` names the output columns explicitly, so a prepared query's
/// column schema — variables minus parameters, in first-occurrence
/// order — is honored instead of being re-derived per call.
pub fn certain_answers_bound(
    edb: &FactSet,
    rules: &RuleSet,
    repairs: &[RepairSet],
    query: &[Literal],
    init: &Subst,
    vars: &[Sym],
) -> Vec<Vec<(Sym, Sym)>> {
    intersect_over_repairs(repairs, |repair| {
        let (adds, dels) = repair.overlay();
        let engine = OverlayEngine::updated(edb, rules, adds, dels);
        let mut answers = BTreeMap::new();
        for s in all_solutions(&engine, query, &mut init.clone(), vars) {
            let binding: Vec<(Sym, Sym)> = vars
                .iter()
                .filter_map(|&v| match s.walk(Term::Var(v)) {
                    Term::Const(c) => Some((v, c)),
                    Term::Var(_) => None,
                })
                .collect();
            let key: Vec<String> = binding
                .iter()
                .map(|(v, c)| format!("{}={}", v.as_str(), c.as_str()))
                .collect();
            answers.insert(key, binding);
        }
        answers
    })
}

/// The certain-answer intersection, parameterized by how one repair
/// candidate's answers are enumerated: `answers_for` returns a repair's
/// answer set keyed by a rendered (name-deterministic, hence
/// order-deterministic) form; an answer is certain iff its key appears
/// for **every** repair, and the survivors come back in key order. The
/// overlay path above and the prepared magic path (`uniform::Session`)
/// both delegate here, so the intersection semantics — including the
/// empty-intersection early exit — exist exactly once.
///
/// `repairs` must be non-empty — a consistent state contributes the
/// single empty repair, under which this is ordinary query answering.
pub fn intersect_over_repairs<K: Ord, T>(
    repairs: &[RepairSet],
    mut answers_for: impl FnMut(&RepairSet) -> BTreeMap<K, T>,
) -> Vec<T> {
    assert!(
        !repairs.is_empty(),
        "certain answers need at least one repair (the empty repair of a consistent state)"
    );
    let mut certain: Option<BTreeMap<K, T>> = None;
    for repair in repairs {
        let answers = answers_for(repair);
        certain = Some(match certain {
            None => answers,
            Some(prev) => prev
                .into_iter()
                .filter(|(k, _)| answers.contains_key(k))
                .collect(),
        });
        if certain.as_ref().is_some_and(|m| m.is_empty()) {
            break;
        }
    }
    certain.unwrap_or_default().into_values().collect()
}

/// Is the closed formula true in every repair?
pub fn certainly_satisfies(edb: &FactSet, rules: &RuleSet, repairs: &[RepairSet], rq: &Rq) -> bool {
    certainly_satisfies_bound(edb, rules, repairs, rq, &Subst::new())
}

/// [`certainly_satisfies`] with the formula's free variables pre-bound
/// by `init` (prepared formula queries bind parameters this way).
pub fn certainly_satisfies_bound(
    edb: &FactSet,
    rules: &RuleSet,
    repairs: &[RepairSet],
    rq: &Rq,
    init: &Subst,
) -> bool {
    assert!(!repairs.is_empty(), "see certain_answers");
    repairs.iter().all(|repair| {
        let (adds, dels) = repair.overlay();
        let engine = OverlayEngine::updated(edb, rules, adds, dels);
        satisfies(&engine, rq, &mut init.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::{Database, Update};
    use uniform_logic::{parse_literal, Fact};

    #[test]
    fn empty_repair_is_plain_answering() {
        let db = Database::parse("p(a). p(b). q(X) :- p(X).").unwrap();
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[RepairSet::empty()],
            &[parse_literal("q(X)").unwrap()],
        );
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn intersection_drops_uncertain_answers() {
        let db = Database::parse("p(a). p(b).").unwrap();
        let keep_a = RepairSet::from_ops(vec![Update::delete(Fact::parse_like("p", &["b"]))]);
        let keep_b = RepairSet::from_ops(vec![Update::delete(Fact::parse_like("p", &["a"]))]);
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[keep_a, keep_b],
            &[parse_literal("p(X)").unwrap()],
        );
        assert!(ans.is_empty(), "{ans:?}");
    }

    #[test]
    fn overlay_insertions_count() {
        let db = Database::parse("q(X) :- p(X).").unwrap();
        let r = RepairSet::from_ops(vec![Update::insert(Fact::parse_like("p", &["z"]))]);
        let ans = certain_answers(
            db.facts(),
            db.rules(),
            &[r],
            &[parse_literal("q(X)").unwrap()],
        );
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0][0].1.as_str(), "z");
    }
}
