//! The SAT-backed repair backend: CAvSAT-style enumeration of
//! subset-minimal repairs, and preferred repairs as weighted MaxSAT.
//!
//! The bounded search of [`crate::engine`] is goal-directed but
//! exponential in the violation count: a state with `n` independent
//! violations explores `Θ(aᶰ)` branches and gives up with
//! [`RepairError::BudgetExhausted`] long before `n` reaches workload
//! scale. Following Dixit & Kolaitis's CAvSAT reduction, this module
//! instead *encodes* the whole active-domain repair space as one clause
//! set and lets conflict-driven clause learning do the pruning:
//!
//! * one **change variable** per candidate EDB operation — deleting an
//!   explicit fact of a relevant relation, or inserting an absent
//!   active-domain tuple into one (relevance = the rule-graph closure
//!   of the constraint literals: a repair touching anything else could
//!   never change a constraint verdict);
//! * **completion clauses** per referenced ground atom, `t ↔ e ∨ ⋁
//!   bodies` — the propositional image of the §4 completion transform,
//!   with `e` tied to the atom's change variable and each body a
//!   Tseitin conjunction over the rule's active-domain instances;
//! * **constraint clauses** from grounding each range-restricted
//!   constraint over the active domain;
//! * a **sequential-counter cardinality layer** `Σ change ≤
//!   max_changes`, guarded by an activator literal so the same clause
//!   set can also be asked "is there anything *beyond* the budget?";
//! * **blocking clauses**: after reporting a minimal repair `M`, the
//!   clause `⋁_{op ∈ M} ¬change(op)` permanently excludes every
//!   superset of `M`, so iterated solving walks the subset-minimal
//!   repairs one by one.
//!
//! The propositional completion is a *relaxation*: under recursion it
//! admits unfounded self-supporting models the stratified semantics
//! rejects. Every SAT model is therefore **verified** against the real
//! engine (apply the change set, recompute the canonical model, check
//! all constraints); a spurious model is excluded by a clause pinning
//! its exact change set (sound: the change set determines the real
//! model, so no genuine repair is lost). A genuine model is shrunk to a
//! subset-minimal repair by destructive SAT-guided deletion before
//! being reported. Termination with UNSAT then proves the enumeration
//! complete, and one extra solve with the cardinality activator negated
//! decides `budget_clipped` *exactly* — which is how this backend
//! serves certain answers on violation-dense states the search refuses.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use uniform_datalog::{satisfies_closed, Model, Update};
use uniform_logic::{unify_terms, Atom, Fact, Rq, Subst, Sym, Term};
use uniform_satisfiability::{
    Assignment, CdclSolver, Cnf, Lit, SanityCheckingSolver, SolveResult, Solver,
};

use crate::engine::{
    op_key, RepairEngine, RepairError, RepairOptions, RepairReport, RepairSet, RepairStats,
};

/// CNF encoding of the active-domain repair space of one engine state.
struct Encoder<'a> {
    eng: &'a RepairEngine,
    cnf: Cnf,
    /// Active domain, name-sorted — byte-for-byte the search's
    /// construction, so both backends ground over the same space.
    domain: Vec<Sym>,
    /// Candidate EDB operations in canonical [`op_key`] order.
    candidates: Vec<Update>,
    /// `change[i]` holds iff candidate `i` is applied.
    change: Vec<Lit>,
    /// Fact → index of its unique candidate (deletion if explicit,
    /// insertion if absent).
    candidate_of: HashMap<Fact, usize>,
    /// Truth literal per referenced ground atom.
    truth: HashMap<Fact, Lit>,
    /// A variable pinned true by a unit clause (`!true_lit` is false).
    true_lit: Lit,
    /// Some cardinality activator actually constrains the change set.
    has_cardinality: bool,
    /// The grounding or the insertion universe was clipped by
    /// `domain_cap`: the encoding over-constrains and completeness is
    /// forfeited (mirrors the search's flag).
    domain_clipped: bool,
    /// Known arities (facts ∪ constraint literals ∪ rule atoms).
    arity: BTreeMap<Sym, usize>,
}

impl<'a> Encoder<'a> {
    fn build(eng: &'a RepairEngine) -> Encoder<'a> {
        let mut cnf = Cnf::new();
        let true_lit = Lit::pos(cnf.fresh_var());
        cnf.add_clause([true_lit]);

        let mut domain: Vec<Sym> = eng.facts().active_domain();
        for c in eng.constraints() {
            for occ in c.rq.literals() {
                for t in &occ.literal.atom.args {
                    if let Some(s) = t.as_const() {
                        if !domain.contains(&s) {
                            domain.push(s);
                        }
                    }
                }
            }
        }
        for r in eng.rules().rules() {
            for t in r
                .head
                .args
                .iter()
                .chain(r.body.iter().flat_map(|l| l.atom.args.iter()))
            {
                if let Some(s) = t.as_const() {
                    if !domain.contains(&s) {
                        domain.push(s);
                    }
                }
            }
        }
        domain.sort_by_key(|s| s.as_str());

        // Relations a repair may usefully touch: everything some
        // constraint can observe, closed through the rule graph.
        let graph = eng.rules().graph();
        let mut relevant: BTreeSet<Sym> = BTreeSet::new();
        for c in eng.constraints() {
            for occ in c.rq.literals() {
                relevant.extend(graph.reachable(occ.literal.atom.pred));
            }
        }

        let mut arity: BTreeMap<Sym, usize> = BTreeMap::new();
        for f in eng.facts().iter() {
            arity.insert(f.pred, f.args.len());
        }
        for c in eng.constraints() {
            for occ in c.rq.literals() {
                arity
                    .entry(occ.literal.atom.pred)
                    .or_insert(occ.literal.atom.args.len());
            }
        }
        for r in eng.rules().rules() {
            arity.entry(r.head.pred).or_insert(r.head.args.len());
            for l in &r.body {
                arity.entry(l.atom.pred).or_insert(l.atom.args.len());
            }
        }

        let mut enc = Encoder {
            eng,
            cnf,
            domain,
            candidates: Vec::new(),
            change: Vec::new(),
            candidate_of: HashMap::new(),
            truth: HashMap::new(),
            true_lit,
            has_cardinality: false,
            domain_clipped: false,
            arity,
        };
        enc.build_candidates(&relevant);
        enc.encode_constraints();
        enc
    }

    fn build_candidates(&mut self, relevant: &BTreeSet<Sym>) {
        let cap = self.eng.options().domain_cap;
        let mut cands: Vec<Update> = Vec::new();
        // Deletions: every explicit fact of a relevant relation (also
        // explicit facts on derived predicates — the store allows them
        // and the search deletes them too).
        for f in self.eng.facts().iter() {
            if relevant.contains(&f.pred) {
                cands.push(Update::delete(f));
            }
        }
        // Insertions: every absent active-domain tuple of a relevant
        // relation — unless the tuple space blows the domain cap, which
        // clips the repair space and forfeits completeness.
        let mut preds: Vec<Sym> = relevant.iter().copied().collect();
        preds.sort_by_key(|s| s.as_str());
        for pred in preds {
            let Some(&ar) = self.arity.get(&pred) else {
                continue;
            };
            if ar == 0 {
                let fact = Fact::new(pred, Vec::new());
                if !self.eng.facts().contains(&fact) {
                    cands.push(Update::insert(fact));
                }
                continue;
            }
            if self.domain.is_empty() {
                continue;
            }
            let combos = self
                .domain
                .len()
                .checked_pow(ar as u32)
                .unwrap_or(usize::MAX);
            if combos > cap {
                self.domain_clipped = true;
                continue;
            }
            let mut idx = vec![0usize; ar];
            'tuples: loop {
                let fact = Fact::new(pred, idx.iter().map(|&i| self.domain[i]).collect());
                if !self.eng.facts().contains(&fact) {
                    cands.push(Update::insert(fact));
                }
                let mut pos = ar;
                loop {
                    if pos == 0 {
                        break 'tuples;
                    }
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < self.domain.len() {
                        continue 'tuples;
                    }
                    idx[pos] = 0;
                }
            }
        }
        cands.sort_by_key(op_key);
        self.change = (0..cands.len())
            .map(|_| Lit::pos(self.cnf.fresh_var()))
            .collect();
        for (i, c) in cands.iter().enumerate() {
            self.candidate_of.insert(c.fact.clone(), i);
        }
        self.candidates = cands;
    }

    fn encode_constraints(&mut self) {
        let rqs: Vec<Rq> = self
            .eng
            .constraints()
            .iter()
            .map(|c| c.rq.clone())
            .collect();
        for rq in &rqs {
            let l = self.formula_lit(rq, &Subst::new());
            self.cnf.add_clause([l]);
        }
    }

    /// Tseitin literal of a (σ-instantiated) reduced formula, with full
    /// equivalences so a real repair's induced assignment always
    /// extends to the auxiliary variables.
    fn formula_lit(&mut self, rq: &Rq, sigma: &Subst) -> Lit {
        match rq {
            Rq::True => self.true_lit,
            Rq::False => !self.true_lit,
            Rq::Lit(l) => {
                let t = self.atom_lit(&l.atom, sigma);
                if l.positive {
                    t
                } else {
                    !t
                }
            }
            Rq::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.formula_lit(p, sigma)).collect();
                self.and_lit(lits)
            }
            Rq::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.formula_lit(p, sigma)).collect();
                self.or_lit(lits)
            }
            Rq::Forall { vars, range, body } => {
                let range = range.clone();
                let body = (**body).clone();
                let mut insts: Vec<Lit> = Vec::new();
                self.for_each_combo(vars, sigma, &mut |enc, s| {
                    let mut alts: Vec<Lit> = range.iter().map(|a| !enc.atom_lit(a, s)).collect();
                    alts.push(enc.formula_lit(&body, s));
                    let inst = enc.or_lit(alts);
                    insts.push(inst);
                });
                self.and_lit(insts)
            }
            Rq::Exists { vars, range, body } => {
                let range = range.clone();
                let body = (**body).clone();
                let mut insts: Vec<Lit> = Vec::new();
                self.for_each_combo(vars, sigma, &mut |enc, s| {
                    let mut parts: Vec<Lit> = range.iter().map(|a| enc.atom_lit(a, s)).collect();
                    parts.push(enc.formula_lit(&body, s));
                    let inst = enc.and_lit(parts);
                    insts.push(inst);
                });
                self.or_lit(insts)
            }
        }
    }

    fn atom_lit(&mut self, atom: &Atom, sigma: &Subst) -> Lit {
        match sigma.ground_atom(atom) {
            Some(f) => self.truth_lit(&f),
            None => {
                // Closed constraints ground under their quantifier
                // bindings; a leftover variable means a malformed nest.
                // Leave the instance unconstrained and flag the clip.
                self.domain_clipped = true;
                self.true_lit
            }
        }
    }

    /// Truth literal of a ground atom in the repaired model, installing
    /// its completion clauses on first reference.
    fn truth_lit(&mut self, fact: &Fact) -> Lit {
        if let Some(&l) = self.truth.get(fact) {
            return l;
        }
        let has_rules = self.eng.rules().rules_for(fact.pred).next().is_some();
        let e = self.explicit_lit(fact);
        if !has_rules {
            self.truth.insert(fact.clone(), e);
            return e;
        }
        let t = Lit::pos(self.cnf.fresh_var());
        // Install before grounding the bodies: recursive rules reach
        // this very atom again and must see the variable.
        self.truth.insert(fact.clone(), t);
        let mut supports = vec![e];
        let rules: Vec<_> = self
            .eng
            .rules()
            .rules_for(fact.pred)
            .map(|(_, r)| r.rename_apart())
            .collect();
        for rule in rules {
            let mut subst = Subst::new();
            let mut ok = rule.head.args.len() == fact.args.len();
            if ok {
                for (&arg, &c) in rule.head.args.iter().zip(fact.args.iter()) {
                    if !unify_terms(&mut subst, arg, Term::Const(c)) {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let mut free: Vec<Sym> = Vec::new();
            for l in &rule.body {
                for t in &l.atom.args {
                    if let Term::Var(v) = *t {
                        if matches!(subst.walk(Term::Var(v)), Term::Var(_)) && !free.contains(&v) {
                            free.push(v);
                        }
                    }
                }
            }
            let body = rule.body.clone();
            self.for_each_combo(&free, &subst, &mut |enc, s| {
                let mut parts: Vec<Lit> = Vec::new();
                for l in &body {
                    let Some(f) = s.ground_atom(&l.atom) else {
                        enc.domain_clipped = true;
                        return;
                    };
                    let tl = enc.truth_lit(&f);
                    parts.push(if l.positive { tl } else { !tl });
                }
                let b = enc.and_lit(parts);
                supports.push(b);
            });
        }
        // t ↔ e ∨ ⋁ bodies (the completion, both directions).
        for &s in &supports {
            self.cnf.add_clause([!s, t]);
        }
        let mut any = vec![!t];
        any.extend(supports);
        self.cnf.add_clause(any);
        t
    }

    /// Explicit-membership literal of a ground atom after the change
    /// set is applied.
    fn explicit_lit(&mut self, fact: &Fact) -> Lit {
        if let Some(&i) = self.candidate_of.get(fact) {
            let c = self.change[i];
            if self.candidates[i].insert {
                c
            } else {
                !c
            }
        } else if self.eng.facts().contains(fact) {
            // An explicit fact without a delete candidate can only be
            // on an irrelevant relation — no constraint observes it.
            self.true_lit
        } else {
            // Absent and uninsertable (clipped insertion universe or
            // out-of-domain constants): stays false.
            !self.true_lit
        }
    }

    /// Odometer over `domain^|vars|` extending `base`; skips the whole
    /// node (flagging `domain_clipped`) past the domain cap — mirroring
    /// the search's `for_each_combo_over`.
    fn for_each_combo(
        &mut self,
        vars: &[Sym],
        base: &Subst,
        each: &mut dyn FnMut(&mut Encoder<'a>, &Subst),
    ) {
        if vars.is_empty() {
            each(self, base);
            return;
        }
        if self.domain.is_empty() {
            return;
        }
        let combos = self
            .domain
            .len()
            .checked_pow(vars.len() as u32)
            .unwrap_or(usize::MAX);
        if combos > self.eng.options().domain_cap {
            self.domain_clipped = true;
            return;
        }
        let domain = self.domain.clone();
        let mut idx = vec![0usize; vars.len()];
        'combos: loop {
            let mut s = base.clone();
            for (v, &i) in vars.iter().zip(idx.iter()) {
                s.bind(*v, Term::Const(domain[i]));
            }
            each(self, &s);
            let mut pos = vars.len();
            loop {
                if pos == 0 {
                    break 'combos;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < domain.len() {
                    continue 'combos;
                }
                idx[pos] = 0;
            }
        }
    }

    fn and_lit(&mut self, lits: Vec<Lit>) -> Lit {
        if lits.is_empty() {
            return self.true_lit;
        }
        if lits.len() == 1 {
            return lits[0];
        }
        let a = Lit::pos(self.cnf.fresh_var());
        for &l in &lits {
            self.cnf.add_clause([!a, l]);
        }
        let mut back = vec![a];
        back.extend(lits.iter().map(|&l| !l));
        self.cnf.add_clause(back);
        a
    }

    fn or_lit(&mut self, lits: Vec<Lit>) -> Lit {
        if lits.is_empty() {
            return !self.true_lit;
        }
        if lits.len() == 1 {
            return lits[0];
        }
        let a = Lit::pos(self.cnf.fresh_var());
        for &l in &lits {
            self.cnf.add_clause([!l, a]);
        }
        let mut back = vec![!a];
        back.extend(lits.iter().copied());
        self.cnf.add_clause(back);
        a
    }

    /// Install one sequential counter (Sinz LT-SEQ) over the change
    /// variables and, per requested bound `b`, overflow clauses guarded
    /// by a fresh activator: assuming the activator enforces
    /// `Σ change ≤ b`; negating it relaxes the bound entirely. Bounds
    /// at or above the candidate count get an unconstrained activator.
    /// Call at most once per encoder.
    fn cardinality_activators(&mut self, bounds: &[usize]) -> BTreeMap<usize, Lit> {
        let n = self.change.len();
        let mut out: BTreeMap<usize, Lit> = BTreeMap::new();
        let kmax = bounds
            .iter()
            .copied()
            .filter(|&b| b > 0 && b < n)
            .max()
            .unwrap_or(0);
        // rows[i][j] ⇐ "at least j+1 of the first i+1 change vars
        // hold" (one-directional: only ever forced true). Prefixes
        // 1..n-1 suffice — the overflow clause at element i consults
        // row i-1.
        let mut rows: Vec<Vec<Lit>> = Vec::new();
        for i in 0..n.saturating_sub(1) {
            if kmax == 0 {
                break;
            }
            let row: Vec<Lit> = (0..kmax).map(|_| Lit::pos(self.cnf.fresh_var())).collect();
            self.cnf.add_clause([!self.change[i], row[0]]);
            if i > 0 {
                let prev = rows[i - 1].clone();
                self.cnf.add_clause([!prev[0], row[0]]);
                for j in 1..kmax {
                    self.cnf.add_clause([!prev[j], row[j]]);
                    self.cnf.add_clause([!self.change[i], !prev[j - 1], row[j]]);
                }
            }
            rows.push(row);
        }
        for &b in bounds {
            if out.contains_key(&b) {
                continue;
            }
            let g = Lit::pos(self.cnf.fresh_var());
            if b >= n {
                // Nothing to enforce: every change set fits.
            } else if b == 0 {
                for i in 0..n {
                    self.cnf.add_clause([!self.change[i], !g]);
                }
                self.has_cardinality = true;
            } else {
                for i in 1..n {
                    // change_i ∧ (≥ b among the first i) → ¬g
                    self.cnf
                        .add_clause([!self.change[i], !rows[i - 1][b - 1], !g]);
                }
                self.has_cardinality = true;
            }
            out.insert(b, g);
        }
        out
    }
}

/// Iterated solve / verify / block loop shared by plain enumeration and
/// the MaxSAT layers.
struct Enumerator<'a> {
    enc: Encoder<'a>,
    solver: SanityCheckingSolver<CdclSolver>,
    /// Remaining conflict budget, from [`RepairOptions::max_branches`].
    remaining: u64,
    branch_limit_hit: bool,
    models_computed: usize,
    models_seen: usize,
}

impl<'a> Enumerator<'a> {
    fn new(eng: &'a RepairEngine) -> Enumerator<'a> {
        Enumerator {
            enc: Encoder::build(eng),
            solver: SanityCheckingSolver::new(CdclSolver::new()),
            remaining: eng.options().max_branches as u64,
            branch_limit_hit: false,
            models_computed: 0,
            models_seen: 0,
        }
    }

    fn solve(&mut self, assumptions: &[Lit]) -> Option<SolveResult> {
        if self.branch_limit_hit {
            return None;
        }
        let before = self.solver.stats().conflicts;
        let res =
            self.solver
                .solve_limited(&self.enc.cnf, assumptions, Some(self.remaining.max(1)));
        let used = self.solver.stats().conflicts.saturating_sub(before);
        self.remaining = self.remaining.saturating_sub(used);
        if res.is_none() {
            self.branch_limit_hit = true;
        }
        res
    }

    fn change_set(&self, a: &Assignment) -> Vec<usize> {
        (0..self.enc.change.len())
            .filter(|&i| a.lit_true(self.enc.change[i]))
            .collect()
    }

    /// Apply a candidate change set and check the repaired canonical
    /// model against every constraint — the lazy-encoding soundness
    /// gate (unfounded recursive support in the propositional
    /// completion cannot survive it).
    fn genuine(&mut self, set: &[usize]) -> bool {
        self.models_computed += 1;
        let mut edb = self.enc.eng.facts().clone();
        for &i in set {
            self.enc.candidates[i].apply(&mut edb);
        }
        let model = Model::compute(&edb, self.enc.eng.rules());
        self.enc
            .eng
            .constraints()
            .iter()
            .all(|c| satisfies_closed(&model, &c.rq))
    }

    /// Exclude exactly this assignment's change set (sound for spurious
    /// models: the change set determines the real repaired model, so an
    /// identical set can never become genuine).
    fn block_exact(&mut self, a: &Assignment) {
        let lits: Vec<Lit> = self
            .enc
            .change
            .iter()
            .map(|&c| if a.lit_true(c) { !c } else { c })
            .collect();
        self.enc.cnf.add_clause(lits);
    }

    /// Permanently exclude every superset of a reported minimal repair.
    /// (For the empty repair of a consistent state this is the empty
    /// clause — enumeration is done.)
    fn block_supersets(&mut self, set: &[usize]) {
        let lits: Vec<Lit> = set.iter().map(|&i| !self.enc.change[i]).collect();
        self.enc.cnf.add_clause(lits);
    }

    /// Next change set that survives real-model verification, blocking
    /// spurious models as they appear. `None` on UNSAT or an exhausted
    /// conflict budget (check `branch_limit_hit` to tell them apart).
    fn next_genuine(&mut self, assumptions: &[Lit]) -> Option<Vec<usize>> {
        loop {
            match self.solve(assumptions)? {
                SolveResult::Unsat => return None,
                SolveResult::Sat(a) => {
                    self.models_seen += 1;
                    let set = self.change_set(&a);
                    if self.genuine(&set) {
                        return Some(set);
                    }
                    self.block_exact(&a);
                }
            }
        }
    }

    /// Shrink a genuine change set to a subset-minimal repair by
    /// destructive SAT-guided deletion: per op (canonical order), ask
    /// for a genuine repair within the current set minus that op;
    /// success replaces the current set, proven failure pins the op.
    /// Earlier blocking clauses cannot interfere — the current set is
    /// never a superset of a previously reported minimal repair, so
    /// neither is any of its subsets.
    fn minimize(&mut self, mut current: Vec<usize>, base: &[Lit]) -> Vec<usize> {
        let order = current.clone();
        let n = self.enc.change.len();
        for &drop in &order {
            if self.branch_limit_hit {
                break;
            }
            if !current.contains(&drop) {
                continue;
            }
            let allowed: BTreeSet<usize> = current.iter().copied().filter(|&i| i != drop).collect();
            let mut assumptions: Vec<Lit> = base.to_vec();
            for i in 0..n {
                if !allowed.contains(&i) {
                    assumptions.push(!self.enc.change[i]);
                }
            }
            if let Some(sub) = self.next_genuine(&assumptions) {
                current = sub;
            }
        }
        current
    }

    fn repair_set(&self, set: &[usize]) -> RepairSet {
        RepairSet::from_ops(set.iter().map(|&i| self.enc.candidates[i].clone()))
    }

    fn explored(&self, options: &RepairOptions) -> usize {
        (options.max_branches as u64).saturating_sub(self.remaining) as usize + self.models_seen
    }
}

/// Enumerate the subset-minimal repairs by iterated SAT with blocking
/// clauses — the engine of [`crate::engine::RepairBackend::Sat`].
pub(crate) fn sat_repairs(eng: &RepairEngine) -> Result<RepairReport, RepairError> {
    let options = *eng.options();
    let mut en = Enumerator::new(eng);
    let acts = en.enc.cardinality_activators(&[options.max_changes]);
    let g = acts[&options.max_changes];
    let mut found: Vec<RepairSet> = Vec::new();
    let mut repair_cap_hit = false;
    while let Some(set) = en.next_genuine(&[g]) {
        let min = en.minimize(set, &[g]);
        en.block_supersets(&min);
        found.push(en.repair_set(&min));
        if found.len() >= options.max_repairs {
            repair_cap_hit = true;
            break;
        }
    }

    let clean = !en.branch_limit_hit && !repair_cap_hit;
    // Exact `budget_clipped`: with the activator negated the counter is
    // off; UNSAT then proves even unboundedly large change sets are all
    // supersets of reported repairs (or spurious, or inconsistent) — no
    // minimal repair beyond the budget exists.
    let budget_clipped = if !en.enc.has_cardinality {
        false
    } else if !clean {
        true
    } else {
        !matches!(en.solve(&[!g]), Some(SolveResult::Unsat))
    };

    found.sort();
    // Subset filter, load-bearing only when the conflict budget cut a
    // minimization short (then a later, smaller repair can subsume an
    // earlier unminimized one).
    let mut repairs: Vec<RepairSet> = Vec::new();
    for cand in found {
        if !repairs.iter().any(|kept| kept.is_subset_of(&cand)) {
            repairs.push(cand);
        }
    }

    let explored = en.explored(&options);
    if repairs.is_empty() {
        if en.branch_limit_hit || repair_cap_hit || en.enc.domain_clipped {
            return Err(RepairError::BudgetExhausted {
                explored,
                max_branches: options.max_branches,
                budget_clipped,
            });
        }
        return Err(RepairError::Unrepairable {
            schema_unsatisfiable: eng.schema_unsatisfiable(),
            budget_clipped,
        });
    }
    let max_level = repairs.iter().map(|r| r.len()).max().unwrap_or(0);
    Ok(RepairReport {
        repairs,
        stats: RepairStats {
            explored,
            models_computed: en.models_computed,
            candidates: en.models_seen,
            max_level,
            solver: en.solver.stats(),
        },
        complete: clean && !en.enc.domain_clipped,
        budget_clipped,
    })
}

/// Preference order over repairs: per-relation operation weights
/// (default 1) and protected relations whose facts no repair may touch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairPreferences {
    weights: BTreeMap<Sym, u64>,
    protected: BTreeSet<Sym>,
}

impl RepairPreferences {
    pub fn new() -> RepairPreferences {
        RepairPreferences::default()
    }

    /// Cost of touching one fact of `pred` (higher = less preferred).
    pub fn weight(mut self, pred: impl Into<Sym>, weight: u64) -> RepairPreferences {
        self.weights.insert(pred.into(), weight);
        self
    }

    /// Exclude every operation on `pred` from the repair space.
    pub fn protect(mut self, pred: impl Into<Sym>) -> RepairPreferences {
        self.protected.insert(pred.into());
        self
    }
}

/// A pluggable preference order — the chooser hook PR 4 left open.
/// Implemented by [`RepairPreferences`]; implement it directly for
/// domain-specific policies (e.g. "deletes cost double").
pub trait RepairChooser {
    /// Cost of one EDB operation; repairs compare by total cost.
    fn op_weight(&self, op: &Update) -> u64;

    /// Protected operations are excluded from the repair space outright.
    fn is_protected(&self, op: &Update) -> bool {
        let _ = op;
        false
    }
}

impl RepairChooser for RepairPreferences {
    fn op_weight(&self, op: &Update) -> u64 {
        self.weights.get(&op.fact.pred).copied().unwrap_or(1)
    }

    fn is_protected(&self, op: &Update) -> bool {
        self.protected.contains(&op.fact.pred)
    }
}

/// A weight-minimal repair among the subset-minimal ones (ties broken
/// by the canonical [`RepairSet`] order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreferredRepair {
    pub repair: RepairSet,
    /// Sum of the chooser's op weights over the repair.
    pub cost: u64,
}

/// Branch-and-bound weighted MaxSAT over cardinality layers: enumerate
/// minimal repairs of size ≤ b for b = 0, 1, …, `max_changes`, keeping
/// the cheapest; once `b · min_weight` can no longer beat the
/// incumbent, stop. Protected relations become hard unit clauses. Since
/// every weight is nonnegative and the optimum over *minimal* repairs
/// is the optimum over all repairs (dropping ops never raises cost),
/// the incumbent at exit is the weight-minimal repair within the fact
/// budget.
pub(crate) fn sat_preferred(
    eng: &RepairEngine,
    chooser: &dyn RepairChooser,
) -> Result<PreferredRepair, RepairError> {
    let options = *eng.options();
    let mut en = Enumerator::new(eng);
    let weights: Vec<u64> = en
        .enc
        .candidates
        .iter()
        .map(|c| chooser.op_weight(c))
        .collect();
    let protected: BTreeSet<usize> = en
        .enc
        .candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| chooser.is_protected(c))
        .map(|(i, _)| i)
        .collect();
    for &i in &protected {
        let unit = !en.enc.change[i];
        en.enc.cnf.add_clause([unit]);
    }
    let min_weight = weights
        .iter()
        .enumerate()
        .filter(|(i, _)| !protected.contains(i))
        .map(|(_, &w)| w)
        .min()
        .unwrap_or(0);

    let bounds: Vec<usize> = (0..=options.max_changes).collect();
    let acts = en.enc.cardinality_activators(&bounds);
    let mut best: Option<PreferredRepair> = None;
    let mut found_count = 0usize;
    let mut repair_cap_hit = false;
    'layers: for b in 0..=options.max_changes {
        if let Some(p) = &best {
            // Any repair still unseen needs ≥ b ops, so costs ≥ b·min.
            if min_weight > 0 && (b as u64).saturating_mul(min_weight) >= p.cost {
                break;
            }
        }
        let gb = acts[&b];
        while let Some(set) = en.next_genuine(&[gb]) {
            let min = en.minimize(set, &[gb]);
            en.block_supersets(&min);
            found_count += 1;
            let cost: u64 = min.iter().map(|&i| weights[i]).sum();
            let repair = en.repair_set(&min);
            let better = match &best {
                None => true,
                Some(p) => cost < p.cost || (cost == p.cost && repair < p.repair),
            };
            if better {
                best = Some(PreferredRepair { repair, cost });
            }
            if found_count >= options.max_repairs {
                repair_cap_hit = true;
                break 'layers;
            }
        }
        if en.branch_limit_hit {
            break;
        }
    }

    let explored = en.explored(&options);
    match best {
        Some(p) => Ok(p),
        None => {
            if en.branch_limit_hit || repair_cap_hit || en.enc.domain_clipped {
                Err(RepairError::BudgetExhausted {
                    explored,
                    max_branches: options.max_branches,
                    budget_clipped: en.enc.has_cardinality,
                })
            } else {
                // Clean exhaustion under protections and budget. Beyond
                // them, something might still exist: probe with every
                // activator relaxed.
                let relax: Vec<Lit> = acts.values().map(|&g| !g).collect();
                let budget_clipped =
                    en.enc.has_cardinality && !matches!(en.solve(&relax), Some(SolveResult::Unsat));
                Err(RepairError::Unrepairable {
                    schema_unsatisfiable: eng.schema_unsatisfiable(),
                    budget_clipped,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RepairBackend;
    use uniform_datalog::Database;

    fn engine(src: &str) -> RepairEngine {
        let db = Database::parse(src).unwrap();
        RepairEngine::new(
            db.facts().clone(),
            db.rules().clone(),
            db.constraints().to_vec(),
        )
    }

    fn sat_options() -> RepairOptions {
        RepairOptions {
            backend: RepairBackend::Sat,
            ..RepairOptions::default()
        }
    }

    fn rendered(report: &RepairReport) -> Vec<String> {
        report.repairs.iter().map(|r| r.to_string()).collect()
    }

    #[test]
    fn consistent_state_yields_the_empty_repair() {
        let eng = engine(
            "p(a). q(a).
             constraint c: forall X: p(X) -> q(X).",
        )
        .with_options(sat_options());
        let report = eng.repairs().unwrap();
        assert_eq!(rendered(&report), vec!["{}"]);
        assert!(report.complete);
        assert!(!report.budget_clipped);
        assert!(report.covers_all_minimal_repairs());
    }

    #[test]
    fn implication_offers_insert_and_delete() {
        let eng = engine(
            "p(a).
             constraint c: forall X: p(X) -> q(X).",
        )
        .with_options(sat_options());
        let report = eng.repairs().unwrap();
        assert_eq!(rendered(&report), vec!["{-p(a)}", "{+q(a)}"]);
        assert!(report.covers_all_minimal_repairs());
        assert!(report.stats.solver.decisions + report.stats.solver.propagations > 0);
    }

    #[test]
    fn sat_and_search_agree_through_rule_bodies() {
        let src = "p(a).
             bad(X) :- p(X), absent_ok(X).
             absent_ok(X) :- p(X), not ok(X).
             constraint c: forall X: bad(X) -> false.";
        let sat = engine(src).with_options(sat_options()).repairs().unwrap();
        let search = engine(src).repairs().unwrap();
        assert_eq!(rendered(&sat), rendered(&search));
        assert!(sat.covers_all_minimal_repairs());
        assert!(search.covers_all_minimal_repairs());
    }

    #[test]
    fn stratified_negation_respected() {
        let src = "seen(a).
             present(X) :- seen(X), not absent(X).
             constraint c: forall X: present(X) -> false.";
        let sat = engine(src).with_options(sat_options()).repairs().unwrap();
        let search = engine(src).repairs().unwrap();
        assert_eq!(rendered(&sat), rendered(&search));
    }

    #[test]
    fn fact_budget_bounds_repair_size_exactly_like_search() {
        let src = "p(a). p(b). p(c).
             constraint c: forall X: p(X) -> q(X).";
        let opts = RepairOptions {
            max_changes: 2,
            backend: RepairBackend::Sat,
            ..RepairOptions::default()
        };
        let err = engine(src).with_options(opts).repairs().unwrap_err();
        assert_eq!(
            err,
            RepairError::Unrepairable {
                schema_unsatisfiable: false,
                budget_clipped: true,
            }
        );
    }

    /// A violation-dense state: one constraint chain per fact, so every
    /// minimal repair deletes all `n` facts and the search must explore
    /// ~3ⁿ enforcement nodes while unit propagation settles the clause
    /// set without a single conflict.
    fn dense(n: usize) -> String {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("p(c{i}). "));
        }
        src.push_str(
            "constraint step: forall X: p(X) -> q(X).
             constraint stop: forall X: q(X) -> false.",
        );
        src
    }

    #[test]
    fn sat_answers_where_the_search_refuses() {
        let opts = RepairOptions {
            max_changes: 8,
            max_branches: 200,
            ..RepairOptions::default()
        };
        let search_err = engine(&dense(8)).with_options(opts).repairs().unwrap_err();
        assert!(matches!(search_err, RepairError::BudgetExhausted { .. }));

        let sat_opts = RepairOptions {
            backend: RepairBackend::Sat,
            ..opts
        };
        let report = engine(&dense(8)).with_options(sat_opts).repairs().unwrap();
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].len(), 8);
        assert!(report.covers_all_minimal_repairs());
    }

    #[test]
    fn auto_escalates_past_the_search_budget() {
        let opts = RepairOptions {
            max_changes: 8,
            max_branches: 200,
            backend: RepairBackend::Auto,
            ..RepairOptions::default()
        };
        let report = engine(&dense(8)).with_options(opts).repairs().unwrap();
        assert_eq!(report.repairs.len(), 1);
        assert!(report.covers_all_minimal_repairs());
        // Certain answers flow through the same escalation.
        let eng = engine(&dense(8)).with_options(opts);
        let query = [uniform_logic::Atom::parse_like("p", &["X"]).pos()];
        let rows = eng.consistent_answers(&query).unwrap();
        assert!(rows.is_empty(), "every repair deletes all p facts");
    }

    #[test]
    fn auto_keeps_search_results_when_coverage_holds() {
        let eng = engine(
            "p(a).
             constraint c: forall X: p(X) -> q(X).",
        )
        .with_options(RepairOptions {
            backend: RepairBackend::Auto,
            ..RepairOptions::default()
        });
        let report = eng.repairs().unwrap();
        assert_eq!(rendered(&report), vec!["{-p(a)}", "{+q(a)}"]);
        // Search served it: no solver effort was spent.
        assert_eq!(report.stats.solver.decisions, 0);
        assert_eq!(report.stats.solver.conflicts, 0);
    }

    #[test]
    fn preferred_repair_follows_weights() {
        let src = "p(a).
             constraint c: forall X: p(X) -> q(X).";
        let eng = engine(src).with_options(sat_options());
        let cheap_delete = RepairPreferences::new().weight("p", 1).weight("q", 5);
        let p = eng.preferred_repair(&cheap_delete).unwrap();
        assert_eq!(p.repair.to_string(), "{-p(a)}");
        assert_eq!(p.cost, 1);

        let cheap_insert = RepairPreferences::new().weight("p", 5).weight("q", 1);
        let p = eng.preferred_repair(&cheap_insert).unwrap();
        assert_eq!(p.repair.to_string(), "{+q(a)}");
        assert_eq!(p.cost, 1);
    }

    #[test]
    fn preferred_repair_honors_protected_relations() {
        let src = "p(a).
             constraint c: forall X: p(X) -> q(X).";
        let eng = engine(src).with_options(sat_options());
        // Even though q is expensive, protecting p leaves no choice.
        let prefs = RepairPreferences::new().protect("p").weight("q", 100);
        let p = eng.preferred_repair(&prefs).unwrap();
        assert_eq!(p.repair.to_string(), "{+q(a)}");
        assert_eq!(p.cost, 100);

        // Protecting everything makes the state unrepairable.
        let all = RepairPreferences::new().protect("p").protect("q");
        let err = eng.preferred_repair(&all).unwrap_err();
        assert!(matches!(err, RepairError::Unrepairable { .. }), "{err:?}");
    }

    #[test]
    fn preferred_repair_breaks_ties_canonically() {
        let src = "p(a).
             constraint c: forall X: p(X) -> q(X).";
        let eng = engine(src).with_options(sat_options());
        let p = eng.preferred_repair(&RepairPreferences::new()).unwrap();
        // Equal weights: {-p(a)} precedes {+q(a)} in canonical order.
        assert_eq!(p.repair.to_string(), "{-p(a)}");
        assert_eq!(p.cost, 1);
    }

    #[test]
    fn preferred_repair_of_a_consistent_state_is_empty() {
        let eng = engine(
            "p(a). q(a).
             constraint c: forall X: p(X) -> q(X).",
        )
        .with_options(sat_options());
        let p = eng.preferred_repair(&RepairPreferences::new()).unwrap();
        assert!(p.repair.is_empty());
        assert_eq!(p.cost, 0);
    }

    #[test]
    fn existential_constraints_are_repaired() {
        let src = "employee(e1).
             constraint someone: exists X: manager(X).";
        let sat = engine(src).with_options(sat_options()).repairs().unwrap();
        let search = engine(src).repairs().unwrap();
        assert_eq!(rendered(&sat), rendered(&search));
        assert!(sat.covers_all_minimal_repairs());
    }

    #[test]
    fn recursive_rules_do_not_admit_unfounded_support() {
        // reach is recursive; the propositional completion alone would
        // accept the self-supporting model {reach(a,a)} without any
        // edge. Verification must force a real derivation.
        let src = "node(a).
             reach(X, X) :- node(X).
             reach(X, Y) :- reach(X, Z), edge(Z, Y).
             constraint c: forall X: goal(X) -> false.
             constraint g: exists X: reach(X, X).";
        let sat = engine(src).with_options(sat_options()).repairs().unwrap();
        // node(a) already yields reach(a,a): consistent, empty repair.
        assert_eq!(rendered(&sat), vec!["{}"]);
    }
}
