//! The bounded repair search: subset-minimal EDB deltas restoring
//! consistency.
//!
//! The search is the §4 enforcement procedure extended with the dual
//! move. At every level the violated constraint instances of the
//! current candidate state are determined against its *recomputed
//! canonical model* (the soundness anchor: a candidate is only recorded
//! once a full determination finds nothing violated), then every
//! instance is enforced, depth-first over all alternatives:
//!
//! * a false positive literal is made true by inserting the fact — or
//!   by making some rule body for it true (instantiated over the active
//!   domain);
//! * a false negative literal is made true by deleting the explicit
//!   fact and *falsifying every remaining rule derivation*, one body
//!   literal per derivation (the only-if direction of the rules'
//!   completion — a derived fact is false exactly when every body that
//!   could produce it is false);
//! * `∀`-instances offer, per violating substitution, the body
//!   enforcement of the satisfiability search *plus* the repair-only
//!   alternative of falsifying a range atom;
//! * `∃`-instances reuse range solutions and enumerate active-domain
//!   witnesses (no fresh constants: repairs stay within the active
//!   domain, so the space is finite and matches the CQA convention).
//!
//! Every path from one level to the next applies at least one effective
//! EDB operation and no branch ever touches the same fact twice, so the
//! depth is bounded by the fact budget and the enumeration — unless the
//! branch limit cuts it — is exhaustive over repairs of at most
//! [`RepairOptions::max_changes`] operations. Candidates are collected,
//! filtered to the subset-minimal ones, verified by full recomputation,
//! and reported in deterministic (size, then name) order.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;
use uniform_datalog::{
    all_solutions, provable, satisfies_closed, solve_conjunction, FactSet, Model, RuleSet,
    Snapshot, Transaction, Update,
};
use uniform_logic::{unify_terms, Constraint, Fact, Literal, Rq, Subst, Sym, Term};
use uniform_obs::Obs;
use uniform_satisfiability::{SatChecker, SatOptions, SatOutcome, SolverStats};

use crate::sat::{self, PreferredRepair, RepairChooser};

/// Which enumeration engine [`RepairEngine::repairs`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairBackend {
    /// The bounded enforcement search (PR 4): goal-directed and
    /// exhaustive within its budgets, but exponential in the violation
    /// count — violation-dense states trip the branch limit.
    #[default]
    Search,
    /// The CAvSAT-style reduction: encode the active-domain repair
    /// space as clauses and enumerate subset-minimal repairs by
    /// iterated SAT with blocking clauses over the bundled CDCL solver
    /// (see `crate::sat`).
    Sat,
    /// Run the search first; if it cannot prove coverage of all minimal
    /// repairs (budget trip, repair cap or domain clip), escalate to
    /// the SAT backend. A SAT failure other than a proven
    /// `Unrepairable` falls back to whatever the search produced.
    Auto,
}

/// Cost bounds of the repair search.
#[derive(Clone, Copy, Debug)]
pub struct RepairOptions {
    /// Fact budget: the maximum number of EDB operations per repair.
    /// The enumeration is exhaustive over repairs of at most this many
    /// operations; larger repairs are never explored.
    pub max_changes: usize,
    /// Branch limit: the maximum number of enforcement nodes explored
    /// before the search gives up with
    /// [`RepairError::BudgetExhausted`].
    pub max_branches: usize,
    /// Cap on distinct candidate repairs collected; hitting it marks
    /// the report incomplete.
    pub max_repairs: usize,
    /// Cap on active-domain instantiations per existential node or rule
    /// body; exceeding it skips the alternative and marks the report
    /// incomplete.
    pub domain_cap: usize,
    /// Verify every reported repair by recomputing the repaired model
    /// and checking all constraints outright (cheap at repair scale).
    /// The SAT backend verifies every candidate model regardless — its
    /// propositional completion is a relaxation, so verification is
    /// load-bearing there, not optional.
    pub verify: bool,
    /// Which enumeration engine to run. For the SAT backend,
    /// `max_branches` bounds solver *conflicts* instead of enforcement
    /// nodes — the same "give up, typed" contract at the same order of
    /// magnitude of work.
    pub backend: RepairBackend,
}

impl Default for RepairOptions {
    fn default() -> RepairOptions {
        RepairOptions {
            max_changes: 4,
            max_branches: 100_000,
            max_repairs: 256,
            domain_cap: 256,
            verify: true,
            backend: RepairBackend::Search,
        }
    }
}

/// Why no repair set could be reported.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The bounded search was cut short — branch limit, repair cap or
    /// domain cap — before any repair could be established. Raising
    /// the limits in [`RepairOptions`] may help.
    BudgetExhausted {
        /// Enforcement nodes explored when the search stopped.
        explored: usize,
        /// The configured branch limit.
        max_branches: usize,
        /// Whether the fact budget also pruned branches (a hint that
        /// `max_changes` is too small as well).
        budget_clipped: bool,
    },
    /// The exhaustive search (within the fact budget and the active
    /// domain) found no repair.
    Unrepairable {
        /// The satisfiability search proved that *no* database state at
        /// all satisfies the constraints — repairing is hopeless no
        /// matter the budget.
        schema_unsatisfiable: bool,
        /// Branches were pruned by the fact budget: a repair larger
        /// than `max_changes` may still exist.
        budget_clipped: bool,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::BudgetExhausted {
                explored,
                max_branches,
                budget_clipped,
            } => {
                write!(
                    f,
                    "repair search budget exhausted after {explored} nodes (branch limit {max_branches}{})",
                    if *budget_clipped {
                        ", fact budget also clipped branches"
                    } else {
                        ""
                    }
                )
            }
            RepairError::Unrepairable {
                schema_unsatisfiable,
                budget_clipped,
            } => {
                if *schema_unsatisfiable {
                    write!(
                        f,
                        "unrepairable: the constraints and rules admit no database state at all"
                    )
                } else if *budget_clipped {
                    write!(
                        f,
                        "no repair within the fact budget (a larger repair may exist)"
                    )
                } else {
                    write!(f, "no repair within the active domain")
                }
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// One repair: a set of EDB operations (insertions and deletions) whose
/// application restores every constraint. Canonically ordered by
/// (predicate name, argument names, deletion-before-insertion), so two
/// equal repairs compare and hash equal regardless of discovery order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RepairSet {
    ops: Vec<Update>,
}

pub(crate) fn op_key(u: &Update) -> (String, Vec<String>, bool) {
    (
        u.fact.pred.as_str().to_string(),
        u.fact.args.iter().map(|a| a.as_str().to_string()).collect(),
        u.insert,
    )
}

impl RepairSet {
    /// The empty repair (of an already-consistent state).
    pub fn empty() -> RepairSet {
        RepairSet { ops: Vec::new() }
    }

    /// Build from operations; canonicalizes the order.
    pub fn from_ops(ops: impl IntoIterator<Item = Update>) -> RepairSet {
        let mut ops: Vec<Update> = ops.into_iter().collect();
        ops.sort_by_key(op_key);
        ops.dedup();
        RepairSet { ops }
    }

    /// The operations, canonically ordered.
    pub fn ops(&self) -> &[Update] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Is every operation of `self` also in `other`?
    pub fn is_subset_of(&self, other: &RepairSet) -> bool {
        self.ops.iter().all(|op| other.ops.contains(op))
    }

    /// The repair as an overlay delta `(insertions, deletions)` for
    /// [`uniform_datalog::OverlayEngine::updated`].
    pub fn overlay(&self) -> (Vec<Fact>, Vec<Fact>) {
        let mut adds = Vec::new();
        let mut dels = Vec::new();
        for op in &self.ops {
            if op.insert {
                adds.push(op.fact.clone());
            } else {
                dels.push(op.fact.clone());
            }
        }
        (adds, dels)
    }

    /// The repair as a transaction (for folding into a commit).
    pub fn to_transaction(&self) -> Transaction {
        Transaction::new(self.ops.clone())
    }

    /// Apply to a copy of `edb`.
    pub fn apply_to(&self, edb: &FactSet) -> FactSet {
        let mut out = edb.clone();
        for op in &self.ops {
            op.apply(&mut out);
        }
        out
    }
}

impl PartialOrd for RepairSet {
    fn partial_cmp(&self, other: &RepairSet) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RepairSet {
    fn cmp(&self, other: &RepairSet) -> std::cmp::Ordering {
        let key = |r: &RepairSet| -> (usize, Vec<(String, Vec<String>, bool)>) {
            (r.ops.len(), r.ops.iter().map(op_key).collect())
        };
        key(self).cmp(&key(other))
    }
}

impl fmt::Display for RepairSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "}}")
    }
}

/// Search counters, for tests, benches and receipts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Enforcement nodes explored.
    pub explored: usize,
    /// Canonical-model recomputations of candidate states.
    pub models_computed: usize,
    /// Candidate repairs recorded before minimality filtering.
    pub candidates: usize,
    /// Deepest enforcement level reached.
    pub max_level: usize,
    /// SAT-solver effort counters; all zero under the search backend.
    pub solver: SolverStats,
}

/// Result of a successful repair enumeration.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The subset-minimal repairs, in (size, name) order. Never empty:
    /// a consistent state reports the single empty repair.
    pub repairs: Vec<RepairSet>,
    pub stats: RepairStats,
    /// `true` iff the enumeration was exhaustive over repairs of at
    /// most [`RepairOptions::max_changes`] operations within the active
    /// domain. Branch or repair caps and domain-cap skips clear it.
    pub complete: bool,
    /// `true` iff the fact budget pruned at least one branch — a
    /// minimal repair *larger* than `max_changes` may exist and be
    /// missing from `repairs`. Certain-answer semantics need
    /// `complete && !budget_clipped` (see
    /// [`RepairReport::covers_all_minimal_repairs`]): intersecting over
    /// a strict subset of the minimal repairs would claim uncertain
    /// answers certain.
    pub budget_clipped: bool,
}

impl RepairReport {
    /// The preferred repair: smallest, ties broken by name order.
    pub fn best(&self) -> &RepairSet {
        &self.repairs[0]
    }

    /// Is `repairs` provably the set of **all** minimal repairs — not
    /// just those within the fact budget? True exactly when the search
    /// was exhaustive and no branch was ever cut by the budget (then
    /// every minimal repair, of any size, was realized by some branch).
    /// This is the precondition for certain-answer semantics.
    pub fn covers_all_minimal_repairs(&self) -> bool {
        self.complete && !self.budget_clipped
    }
}

/// The repair engine for one (inconsistent) database state. See the
/// crate docs.
pub struct RepairEngine {
    edb: FactSet,
    rules: RuleSet,
    constraints: Vec<Constraint>,
    options: RepairOptions,
    /// Observability domain for `repair.run` spans, `repair.latency.*`
    /// histograms and `repair.*` effort counters; `None` runs silent.
    obs: Option<Arc<Obs>>,
}

impl RepairEngine {
    pub fn new(edb: FactSet, rules: RuleSet, constraints: Vec<Constraint>) -> RepairEngine {
        RepairEngine {
            edb,
            rules,
            constraints,
            options: RepairOptions::default(),
            obs: None,
        }
    }

    /// Repair the state a snapshot pins.
    pub fn for_snapshot(snapshot: &Snapshot) -> RepairEngine {
        RepairEngine::new(
            snapshot.facts().clone(),
            snapshot.rules().clone(),
            snapshot.constraints().to_vec(),
        )
    }

    /// Repair the *would-be* state `U(D)`: the snapshot with the
    /// transaction's net effect applied. This is how a commit pipeline
    /// turns a violating transaction's [`CheckReport`] into a repair —
    /// the reported violations are exactly the violations of this
    /// state.
    ///
    /// [`CheckReport`]: uniform_integrity::CheckReport
    pub fn for_update(snapshot: &Snapshot, tx: &Transaction) -> RepairEngine {
        let mut edb = snapshot.facts().clone();
        let (adds, dels) = tx.net_effect(snapshot.facts());
        for f in &adds {
            edb.insert(f);
        }
        for f in &dels {
            edb.remove(f);
        }
        RepairEngine::new(
            edb,
            snapshot.rules().clone(),
            snapshot.constraints().to_vec(),
        )
    }

    pub fn with_options(mut self, options: RepairOptions) -> RepairEngine {
        self.options = options;
        self
    }

    /// Report runs into an observability domain: every
    /// [`RepairEngine::repairs`] call records a `repair.run` span
    /// (tagged with the backend), its latency into
    /// `repair.latency.<backend>`, and the search/solver effort
    /// counters under `repair.search.*` / `repair.sat.*`.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> RepairEngine {
        self.obs = Some(obs);
        self
    }

    pub fn options(&self) -> &RepairOptions {
        &self.options
    }

    pub fn facts(&self) -> &FactSet {
        &self.edb
    }

    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Names of the constraints violated in the engine's state.
    pub fn violations(&self) -> Vec<String> {
        let model = Model::compute(&self.edb, &self.rules);
        self.constraints
            .iter()
            .filter(|c| !satisfies_closed(&model, &c.rq))
            .map(|c| c.name.clone())
            .collect()
    }

    /// Enumerate the subset-minimal repairs with the configured
    /// backend. A consistent state yields the single empty repair.
    pub fn repairs(&self) -> Result<RepairReport, RepairError> {
        let tag = match self.options.backend {
            RepairBackend::Search => "search",
            RepairBackend::Sat => "sat",
            RepairBackend::Auto => "auto",
        };
        let _span = self.obs.as_ref().map(|obs| {
            let hist = match self.options.backend {
                RepairBackend::Search => obs.histogram("repair.latency.search"),
                RepairBackend::Sat => obs.histogram("repair.latency.sat"),
                RepairBackend::Auto => obs.histogram("repair.latency.auto"),
            };
            obs.span_timed("repair.run", Some(tag), hist)
        });
        let result = self.dispatch_backend();
        if let (Some(obs), Ok(report)) = (self.obs.as_ref(), &result) {
            match self.options.backend {
                RepairBackend::Search => obs.counter("repair.runs.search").incr(),
                RepairBackend::Sat => obs.counter("repair.runs.sat").incr(),
                RepairBackend::Auto => obs.counter("repair.runs.auto").incr(),
            }
            let stats = &report.stats;
            obs.counter("repair.search.explored")
                .add(stats.explored as u64);
            obs.counter("repair.search.models_computed")
                .add(stats.models_computed as u64);
            obs.counter("repair.sat.decisions")
                .add(stats.solver.decisions);
            obs.counter("repair.sat.propagations")
                .add(stats.solver.propagations);
            obs.counter("repair.sat.conflicts")
                .add(stats.solver.conflicts);
            obs.counter("repair.sat.learned").add(stats.solver.learned);
            obs.counter("repair.sat.restarts")
                .add(stats.solver.restarts);
        }
        result
    }

    fn dispatch_backend(&self) -> Result<RepairReport, RepairError> {
        match self.options.backend {
            RepairBackend::Search => self.search_repairs(),
            RepairBackend::Sat => sat::sat_repairs(self),
            RepairBackend::Auto => match self.search_repairs() {
                Ok(report) if report.covers_all_minimal_repairs() => Ok(report),
                outcome => match sat::sat_repairs(self) {
                    Ok(report) => Ok(report),
                    // A SAT-proven dead end beats a search "gave up".
                    Err(err @ RepairError::Unrepairable { .. }) => Err(err),
                    Err(_) => outcome,
                },
            },
        }
    }

    /// The bounded enforcement search (always available as the
    /// differential oracle for the SAT backend).
    pub(crate) fn search_repairs(&self) -> Result<RepairReport, RepairError> {
        let mut search = Search::new(self);
        search.settle(0);

        let stats = RepairStats {
            explored: search.explored,
            models_computed: search.models_computed,
            candidates: search.found.len(),
            max_level: search.max_level,
            solver: SolverStats::default(),
        };
        let complete = !search.branch_limit_hit && !search.repair_cap_hit && !search.domain_clipped;

        // Subset-minimal filter: `found` is ordered smallest-first, so
        // every proper subset of a candidate precedes it.
        let mut minimal: Vec<RepairSet> = Vec::new();
        for cand in &search.found {
            if minimal.iter().any(|kept| kept.is_subset_of(cand)) {
                continue;
            }
            if self.options.verify && !self.repair_restores_consistency(cand) {
                debug_assert!(false, "unsound candidate repair: {cand}");
                continue;
            }
            minimal.push(cand.clone());
        }

        if minimal.is_empty() {
            if search.branch_limit_hit || search.repair_cap_hit || search.domain_clipped {
                return Err(RepairError::BudgetExhausted {
                    explored: search.explored,
                    max_branches: self.options.max_branches,
                    budget_clipped: search.budget_clipped,
                });
            }
            return Err(RepairError::Unrepairable {
                schema_unsatisfiable: self.schema_unsatisfiable(),
                budget_clipped: search.budget_clipped,
            });
        }
        Ok(RepairReport {
            repairs: minimal,
            stats,
            complete,
            budget_clipped: search.budget_clipped,
        })
    }

    /// Does applying `repair` leave a state in which every constraint
    /// holds? Full recomputation — the independent soundness check.
    pub fn repair_restores_consistency(&self, repair: &RepairSet) -> bool {
        let repaired = repair.apply_to(&self.edb);
        let model = Model::compute(&repaired, &self.rules);
        self.constraints
            .iter()
            .all(|c| satisfies_closed(&model, &c.rq))
    }

    /// Certain answers of a conjunctive query: the answers true in
    /// **every** minimal repair. Refuses (typed
    /// [`RepairError::BudgetExhausted`]) unless the enumeration
    /// provably covered all minimal repairs — in particular, when the
    /// fact budget clipped a branch, a minimal repair larger than
    /// `max_changes` may exist, and intersecting without it would claim
    /// uncertain answers certain.
    pub fn consistent_answers(
        &self,
        query: &[Literal],
    ) -> Result<Vec<Vec<(Sym, Sym)>>, RepairError> {
        match self.repairs_covering_all_minimal() {
            Ok(report) => Ok(crate::cqa::certain_answers(
                &self.edb,
                &self.rules,
                &report.repairs,
                query,
            )),
            Err(err) => {
                if matches!(err, RepairError::BudgetExhausted { .. })
                    && self.reads_outside_affected(query.iter().map(|l| l.atom.pred))
                {
                    // The query cannot observe any relation a repair may
                    // touch: its answers agree across all repairs (and
                    // with the unrepaired state), clipped budget or not.
                    return Ok(crate::cqa::certain_answers(
                        &self.edb,
                        &self.rules,
                        &[RepairSet::empty()],
                        query,
                    ));
                }
                Err(err)
            }
        }
    }

    /// Is the closed formula true in every minimal repair? Same
    /// coverage requirement as [`RepairEngine::consistent_answers`],
    /// with the same affected-closure exemption for formulas that read
    /// only unaffected relations.
    pub fn certainly_satisfies(&self, rq: &Rq) -> Result<bool, RepairError> {
        match self.repairs_covering_all_minimal() {
            Ok(report) => Ok(crate::cqa::certainly_satisfies(
                &self.edb,
                &self.rules,
                &report.repairs,
                rq,
            )),
            Err(err) => {
                if matches!(err, RepairError::BudgetExhausted { .. })
                    && self
                        .reads_outside_affected(rq.literals().iter().map(|o| o.literal.atom.pred))
                {
                    return Ok(crate::cqa::certainly_satisfies(
                        &self.edb,
                        &self.rules,
                        &[RepairSet::empty()],
                        rq,
                    ));
                }
                Err(err)
            }
        }
    }

    /// The *affected closure* of the engine's state: the least union of
    /// whole constraint verdict closures that contains every violated
    /// constraint's closure. Constraints partition around it — each has
    /// its closure inside the set or disjoint from it — so any
    /// subset-minimal repair operates entirely inside it: splitting a
    /// repair `R` into `R_A` (ops inside) and `R_out` leaves `R_A`
    /// alone already a repair (it fixes every affected constraint, and
    /// unaffected constraints hold in the original state and cannot see
    /// `R_A`), hence minimality forces `R_out = ∅`. Returned sorted, in
    /// `Sym` order.
    pub fn affected_closure(&self) -> Vec<Sym> {
        let graph = self.rules.graph();
        let closures: Vec<BTreeSet<Sym>> = self
            .constraints
            .iter()
            .map(|c| {
                let mut s = BTreeSet::new();
                for occ in c.rq.literals() {
                    s.extend(graph.reachable(occ.literal.atom.pred));
                }
                s
            })
            .collect();
        let model = Model::compute(&self.edb, &self.rules);
        let mut affected: BTreeSet<Sym> = BTreeSet::new();
        let mut included = vec![false; self.constraints.len()];
        for (i, c) in self.constraints.iter().enumerate() {
            if !satisfies_closed(&model, &c.rq) {
                included[i] = true;
                affected.extend(closures[i].iter().copied());
            }
        }
        // Couple in every constraint whose closure overlaps the set so
        // far, to fixpoint: a repair of an affected constraint may
        // violate an overlapping one and force further ops, but it can
        // never jump across disjoint closures.
        loop {
            let mut changed = false;
            for (i, closure) in closures.iter().enumerate() {
                if !included[i] && !closure.is_disjoint(&affected) {
                    included[i] = true;
                    affected.extend(closure.iter().copied());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        affected.into_iter().collect()
    }

    /// Is every relation reachable from `preds` (closed down through
    /// rule bodies) outside the [`RepairEngine::affected_closure`]?
    /// Such a read cannot distinguish minimal repairs from each other
    /// or from the unrepaired state — the exemption that lets certain
    /// answers be served even when the repair enumeration refuses.
    pub fn reads_outside_affected(&self, preds: impl IntoIterator<Item = Sym>) -> bool {
        let affected: BTreeSet<Sym> = self.affected_closure().into_iter().collect();
        let graph = self.rules.graph();
        preds
            .into_iter()
            .all(|p| graph.reachable(p).iter().all(|r| !affected.contains(r)))
    }

    /// The weight-minimal repair among the subset-minimal ones under a
    /// preference order — per-relation weights and protected relations
    /// via [`crate::sat::RepairPreferences`], or any custom
    /// [`RepairChooser`]. Always SAT-backed (branch-and-bound weighted
    /// MaxSAT over cardinality layers), regardless of
    /// [`RepairOptions::backend`].
    pub fn preferred_repair(
        &self,
        chooser: &dyn RepairChooser,
    ) -> Result<PreferredRepair, RepairError> {
        sat::sat_preferred(self, chooser)
    }

    /// `repairs()`, additionally demanding
    /// [`RepairReport::covers_all_minimal_repairs`] — the precondition
    /// for serving certain answers. Public so prepared-query sessions
    /// can enumerate once per pinned snapshot and intersect many
    /// queries over the same repair list (see `uniform::Session`).
    pub fn repairs_covering_all_minimal(&self) -> Result<RepairReport, RepairError> {
        let report = self.repairs()?;
        if !report.covers_all_minimal_repairs() {
            return Err(RepairError::BudgetExhausted {
                explored: report.stats.explored,
                max_branches: self.options.max_branches,
                budget_clipped: report.budget_clipped,
            });
        }
        Ok(report)
    }

    /// The *verdict closure* of a repair enumeration: every relation
    /// the report's verdict — the violation set, the minimal repairs,
    /// and therefore any certain answer intersected over them — can
    /// depend on. Per constraint literal, the predicate is closed
    /// downward through rule bodies (a constraint over a derived
    /// predicate reads every relation its rules reach); the relations
    /// the reported repairs themselves touch are unioned in for good
    /// measure (they are EDB predicates of the same constraints, so
    /// this is a no-op unless a rule set makes it otherwise).
    ///
    /// Soundness of carry-forward rests on this set: a committed write
    /// entirely outside it cannot change any constraint's truth in any
    /// candidate state, hence neither the violation set nor the
    /// subset-minimal repairs — which is what lets a shared
    /// certain-answer cache carry `report` forward across such commits
    /// instead of re-enumerating (see `uniform::ConcurrentDatabase`).
    /// Returned sorted, in `Sym` order.
    pub fn report_closure(&self, report: &RepairReport) -> Vec<Sym> {
        let graph = self.rules.graph();
        let mut closure: BTreeSet<Sym> = BTreeSet::new();
        for c in &self.constraints {
            for occ in c.rq.literals() {
                closure.extend(graph.reachable(occ.literal.atom.pred));
            }
        }
        for repair in &report.repairs {
            for op in repair.ops() {
                closure.insert(op.fact.pred);
            }
        }
        closure.into_iter().collect()
    }

    /// Classify a repairless outcome with the satisfiability search of
    /// §4 (bounded tightly — see [`SatOptions::classification`]): if no
    /// database state at all satisfies the constraints, no budget will
    /// ever find a repair.
    pub(crate) fn schema_unsatisfiable(&self) -> bool {
        let report = SatChecker::new(self.rules.clone(), self.constraints.clone())
            .with_options(SatOptions::classification())
            .check();
        matches!(report.outcome, SatOutcome::Unsatisfiable)
    }
}

/// Depth-first enumeration state. One instance per `repairs()` call.
struct Search<'a> {
    eng: &'a RepairEngine,
    edb: FactSet,
    model_cache: Option<Arc<Model>>,
    delta: Vec<Update>,
    touched: HashSet<Fact>,
    pos_active: HashSet<Fact>,
    neg_active: HashSet<Fact>,
    /// Canonical delta sets already settled (duplicate-state pruning).
    visited: HashSet<Vec<(Fact, bool)>>,
    /// Active domain: EDB constants plus rule/constraint constants,
    /// name-sorted for deterministic alternative order.
    domain: Vec<Sym>,
    found: BTreeSet<RepairSet>,
    explored: usize,
    models_computed: usize,
    max_level: usize,
    branch_limit_hit: bool,
    repair_cap_hit: bool,
    budget_clipped: bool,
    domain_clipped: bool,
}

impl<'a> Search<'a> {
    fn new(eng: &'a RepairEngine) -> Search<'a> {
        let mut domain: Vec<Sym> = eng.edb.active_domain();
        for c in &eng.constraints {
            for occ in c.rq.literals() {
                for t in &occ.literal.atom.args {
                    if let Some(s) = t.as_const() {
                        if !domain.contains(&s) {
                            domain.push(s);
                        }
                    }
                }
            }
        }
        for r in eng.rules.rules() {
            for t in r
                .head
                .args
                .iter()
                .chain(r.body.iter().flat_map(|l| l.atom.args.iter()))
            {
                if let Some(s) = t.as_const() {
                    if !domain.contains(&s) {
                        domain.push(s);
                    }
                }
            }
        }
        domain.sort_by_key(|s| s.as_str());
        Search {
            eng,
            edb: eng.edb.clone(),
            model_cache: None,
            delta: Vec::new(),
            touched: HashSet::new(),
            pos_active: HashSet::new(),
            neg_active: HashSet::new(),
            visited: HashSet::new(),
            domain,
            found: BTreeSet::new(),
            explored: 0,
            models_computed: 0,
            max_level: 0,
            branch_limit_hit: false,
            repair_cap_hit: false,
            budget_clipped: false,
            domain_clipped: false,
        }
    }

    /// Abandon everything? (Branch limit or repair cap hit — either
    /// way the enumeration can no longer be exhaustive.)
    fn cut(&self) -> bool {
        self.branch_limit_hit || self.repair_cap_hit
    }

    fn model(&mut self) -> Arc<Model> {
        if self.model_cache.is_none() {
            self.models_computed += 1;
            self.model_cache = Some(Arc::new(Model::compute(&self.edb, &self.eng.rules)));
        }
        self.model_cache.clone().expect("just computed")
    }

    fn can_push(&mut self) -> bool {
        if self.delta.len() >= self.eng.options.max_changes {
            self.budget_clipped = true;
            return false;
        }
        true
    }

    fn push_op(&mut self, op: Update) {
        debug_assert!(op.is_effective(&self.edb), "ineffective repair op {op}");
        op.apply(&mut self.edb);
        self.touched.insert(op.fact.clone());
        self.delta.push(op);
        self.model_cache = None;
    }

    fn pop_op(&mut self) {
        let op = self.delta.pop().expect("pop without push");
        op.undo(&mut self.edb);
        self.touched.remove(&op.fact);
        self.model_cache = None;
    }

    fn delta_key(&self) -> Vec<(Fact, bool)> {
        let mut key: Vec<(Fact, bool)> = self
            .delta
            .iter()
            .map(|u| (u.fact.clone(), u.insert))
            .collect();
        key.sort();
        key
    }

    fn record(&mut self) {
        let rs = RepairSet::from_ops(self.delta.iter().cloned());
        self.found.insert(rs);
        if self.found.len() >= self.eng.options.max_repairs {
            self.repair_cap_hit = true;
        }
    }

    /// One saturation level: determine the violated constraint
    /// instances against the recomputed canonical model; record the
    /// delta when nothing is violated, otherwise enforce everything and
    /// recurse. Every path between levels applies at least one
    /// effective operation, so the depth is bounded by the fact budget.
    fn settle(&mut self, level: usize) {
        if self.cut() {
            return;
        }
        if !self.visited.insert(self.delta_key()) {
            return;
        }
        self.max_level = self.max_level.max(level);
        let model = self.model();
        let eng = self.eng;
        let violated: Vec<Rq> = eng
            .constraints
            .iter()
            .filter(|c| !satisfies_closed(model.as_ref(), &c.rq))
            .map(|c| c.rq.clone())
            .collect();
        if violated.is_empty() {
            self.record();
            return;
        }
        let mut cont = |s: &mut Self| s.settle(level + 1);
        self.enforce_seq(&violated, &mut cont);
    }

    fn enforce_seq(&mut self, agenda: &[Rq], k: &mut dyn FnMut(&mut Self)) {
        match agenda.split_first() {
            None => k(self),
            Some((f, rest)) => {
                let mut cont = |s: &mut Self| s.enforce_seq(rest, k);
                self.enforce_one(f, &mut cont);
            }
        }
    }

    /// Enforce one closed formula, exploring *every* alternative (this
    /// is an enumeration, not a satisfiability decision: success paths
    /// call `k` and then backtrack to try the next alternative).
    fn enforce_one(&mut self, f: &Rq, k: &mut dyn FnMut(&mut Self)) {
        if self.cut() {
            return;
        }
        self.explored += 1;
        if self.explored > self.eng.options.max_branches {
            self.branch_limit_hit = true;
            return;
        }
        if satisfies_closed(self.model().as_ref(), f) {
            return k(self);
        }
        match f {
            Rq::True => unreachable!("true is always satisfied"),
            Rq::False => {}
            Rq::Lit(l) if l.positive => {
                let fact = l.atom.to_fact().expect("enforced literals are ground");
                self.enforce_positive(fact, k);
            }
            Rq::Lit(l) => {
                let fact = l.atom.to_fact().expect("enforced literals are ground");
                self.enforce_negative(fact, k);
            }
            Rq::And(gs) => self.enforce_seq(gs, k),
            Rq::Or(gs) => {
                for g in gs {
                    self.enforce_one(g, k);
                }
            }
            Rq::Forall { range, body, vars } => {
                // Per violating σ (range true, body false): either
                // enforce the body — or, the repair-only dual, falsify
                // one of the range atoms.
                let model = self.model();
                let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();
                let mut agenda: Vec<Rq> = Vec::new();
                let mut seen: HashSet<Rq> = HashSet::new();
                for sigma in all_solutions(model.as_ref(), &lits, &mut Subst::new(), vars) {
                    let inst = body.apply(&sigma);
                    if satisfies_closed(model.as_ref(), &inst) {
                        continue;
                    }
                    let mut alts = vec![inst];
                    for a in range {
                        alts.push(Rq::Lit(sigma.apply_atom(a).neg()));
                    }
                    let node = Rq::or(alts);
                    if seen.insert(node.clone()) {
                        agenda.push(node);
                    }
                }
                self.enforce_seq(&agenda, k);
            }
            Rq::Exists { vars, range, body } => {
                let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();
                // Alternative 1 (§4): reuse substitutions whose range
                // already holds; only the body needs enforcement.
                let model = self.model();
                let sols = all_solutions(model.as_ref(), &lits, &mut Subst::new(), vars);
                drop(model);
                for sigma in sols {
                    self.enforce_one(&body.apply(&sigma), k);
                }
                // Alternative 2: active-domain witnesses whose range
                // does not hold yet — enforce range and body together.
                if !vars.is_empty() {
                    self.for_each_domain_combo(&vars.clone(), &mut |s, sigma| {
                        let range_holds = {
                            let model = s.model();
                            let mut probe = sigma.clone();
                            provable(model.as_ref(), &lits, &mut probe)
                        };
                        if range_holds {
                            return; // covered by alternative 1
                        }
                        let mut agenda: Vec<Rq> = lits
                            .iter()
                            .map(|l| Rq::Lit(sigma.apply_literal(l)))
                            .collect();
                        agenda.push(body.apply(sigma));
                        s.enforce_seq(&agenda, k);
                    });
                }
            }
        }
    }

    /// Make a false ground atom true: insert it explicitly, or make
    /// some rule body for it true.
    fn enforce_positive(&mut self, fact: Fact, k: &mut dyn FnMut(&mut Self)) {
        if self.touched.contains(&fact) {
            // This branch already deleted the fact; re-establishing it
            // (explicitly or via rules) would make that deletion a
            // model-level no-op — never minimal. Prune.
            return;
        }
        if self.can_push() {
            self.push_op(Update::insert(fact.clone()));
            k(self);
            self.pop_op();
        }
        if self.pos_active.contains(&fact) {
            return; // cyclic derivation goal: no progress through here
        }
        self.pos_active.insert(fact.clone());
        let eng = self.eng;
        for (_, rule) in eng.rules.rules_for(fact.pred) {
            if self.cut() {
                break;
            }
            let rule = rule.rename_apart();
            let mut subst = Subst::new();
            let mut ok = true;
            for (&arg, &c) in rule.head.args.iter().zip(&fact.args) {
                if !unify_terms(&mut subst, arg, Term::Const(c)) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            // Body variables left free by head unification: instantiate
            // over the active domain (first-occurrence order).
            let mut free: Vec<Sym> = Vec::new();
            for l in &rule.body {
                for v in l.vars() {
                    if matches!(subst.walk(Term::Var(v)), Term::Var(_)) && !free.contains(&v) {
                        free.push(v);
                    }
                }
            }
            let base = subst.clone();
            self.for_each_combo_over(&free, &base, &mut |s, sigma| {
                let agenda: Vec<Rq> = rule
                    .body
                    .iter()
                    .map(|l| Rq::Lit(sigma.apply_literal(l)))
                    .collect();
                s.enforce_seq(&agenda, k);
            });
        }
        self.pos_active.remove(&fact);
    }

    /// Make a true ground atom false: delete the explicit fact if
    /// present, then falsify every remaining rule derivation (the
    /// completion's only-if direction), one body literal per
    /// derivation.
    fn enforce_negative(&mut self, fact: Fact, k: &mut dyn FnMut(&mut Self)) {
        if self.neg_active.contains(&fact) {
            return; // already being falsified upstream
        }
        if self.edb.contains(&fact) {
            if self.touched.contains(&fact) {
                return; // inserted earlier in this branch: contradictory
            }
            if !self.can_push() {
                return;
            }
            self.push_op(Update::delete(fact.clone()));
            self.neg_active.insert(fact.clone());
            self.falsify_derivations(&fact, k);
            self.neg_active.remove(&fact);
            self.pop_op();
        } else {
            self.neg_active.insert(fact.clone());
            self.falsify_derivations(&fact, k);
            self.neg_active.remove(&fact);
        }
    }

    fn falsify_derivations(&mut self, fact: &Fact, k: &mut dyn FnMut(&mut Self)) {
        if self.cut() {
            return;
        }
        let model = self.model();
        let eng = self.eng;
        let active = self.neg_active.clone();
        // The first rule instance still deriving `fact` — skipping
        // instances whose body leans on a goal already being falsified
        // (they collapse once that goal completes).
        let mut chosen: Option<Vec<Literal>> = None;
        'rules: for (_, rule) in eng.rules.rules_for(fact.pred) {
            let rule = rule.rename_apart();
            let mut subst = Subst::new();
            let mut ok = true;
            for (&arg, &c) in rule.head.args.iter().zip(&fact.args) {
                if !unify_terms(&mut subst, arg, Term::Const(c)) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let mut found: Option<Vec<Literal>> = None;
            solve_conjunction(model.as_ref(), &rule.body, &mut subst, &mut |s| {
                let ground: Vec<Literal> = rule.body.iter().map(|l| s.apply_literal(l)).collect();
                let self_supported = ground
                    .iter()
                    .any(|l| l.positive && l.atom.to_fact().is_some_and(|f| active.contains(&f)));
                if self_supported {
                    return true; // keep looking
                }
                found = Some(ground);
                false
            });
            if let Some(g) = found {
                chosen = Some(g);
                break 'rules;
            }
        }
        match chosen {
            // No live derivation left: the goal holds, continue.
            None => k(self),
            Some(body) => {
                for lit in &body {
                    if lit.complement().atom.to_fact().is_none() {
                        continue; // non-ground (unsafe rule): skip
                    }
                    let goal = Rq::Lit(lit.complement());
                    let mut cont = |s: &mut Self| s.falsify_derivations(fact, k);
                    self.enforce_one(&goal, &mut cont);
                }
            }
        }
    }

    /// Run `each` for every assignment of `vars` over the active
    /// domain, starting from the empty substitution.
    fn for_each_domain_combo(&mut self, vars: &[Sym], each: &mut dyn FnMut(&mut Self, &Subst)) {
        let base = Subst::new();
        self.for_each_combo_over(vars, &base, each);
    }

    /// Odometer over `domain^|vars|`, extending `base`. Skips the whole
    /// enumeration (and marks the report incomplete) past
    /// [`RepairOptions::domain_cap`].
    fn for_each_combo_over(
        &mut self,
        vars: &[Sym],
        base: &Subst,
        each: &mut dyn FnMut(&mut Self, &Subst),
    ) {
        if vars.is_empty() {
            each(self, base);
            return;
        }
        if self.domain.is_empty() {
            return;
        }
        let combos = self
            .domain
            .len()
            .checked_pow(vars.len() as u32)
            .unwrap_or(usize::MAX);
        if combos > self.eng.options.domain_cap {
            self.domain_clipped = true;
            return;
        }
        let domain = self.domain.clone();
        let mut assignment = vec![0usize; vars.len()];
        'combos: loop {
            if self.cut() {
                return;
            }
            let mut sigma = base.clone();
            for (&v, &i) in vars.iter().zip(&assignment) {
                sigma.bind(v, Term::Const(domain[i]));
            }
            each(self, &sigma);
            for slot in assignment.iter_mut() {
                *slot += 1;
                if *slot < domain.len() {
                    continue 'combos;
                }
                *slot = 0;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_datalog::Database;

    fn engine(src: &str) -> RepairEngine {
        let db = Database::parse(src).unwrap();
        RepairEngine::new(
            db.facts().clone(),
            db.rules().clone(),
            db.constraints().to_vec(),
        )
    }

    fn rendered(report: &RepairReport) -> Vec<String> {
        report.repairs.iter().map(|r| r.to_string()).collect()
    }

    #[test]
    fn consistent_state_yields_the_empty_repair() {
        let report = engine("q(a). p(a). constraint c: forall X: p(X) -> q(X).")
            .repairs()
            .unwrap();
        assert_eq!(report.repairs, vec![RepairSet::empty()]);
        assert!(report.complete);
    }

    #[test]
    fn implication_offers_insert_and_delete() {
        let report = engine("p(a). constraint c: forall X: p(X) -> q(X).")
            .repairs()
            .unwrap();
        assert_eq!(rendered(&report), vec!["{-p(a)}", "{+q(a)}"]);
        assert!(report.complete);
    }

    #[test]
    fn denial_offers_each_deletion() {
        let report = engine("p(a). q(a). constraint c: forall X: p(X) & q(X) -> false.")
            .repairs()
            .unwrap();
        assert_eq!(rendered(&report), vec!["{-p(a)}", "{-q(a)}"]);
    }

    #[test]
    fn existential_witnesses_from_the_active_domain() {
        let report = engine("seen(a). seen(b). constraint c: exists X: emp(X).")
            .repairs()
            .unwrap();
        assert_eq!(rendered(&report), vec!["{+emp(a)}", "{+emp(b)}"]);
    }

    #[test]
    fn derived_violations_repaired_through_rule_bodies() {
        // flagged is derived; falsifying it means deleting a body fact.
        let report = engine(
            "
            flagged(X) :- p(X), bad(X).
            p(a). bad(a).
            constraint c: forall X: flagged(X) -> ok(X).
        ",
        )
        .repairs()
        .unwrap();
        assert_eq!(rendered(&report), vec!["{-bad(a)}", "{+ok(a)}", "{-p(a)}"]);
    }

    #[test]
    fn positive_goals_satisfiable_through_rules() {
        // Enforcing emp(b) can insert emp(b) explicitly or insert the
        // rule's body fact boss(b).
        let report = engine(
            "
            emp(X) :- boss(X).
            seen(b).
            constraint c: forall X: seen(X) -> emp(X).
        ",
        )
        .repairs()
        .unwrap();
        assert_eq!(
            rendered(&report),
            vec!["{+boss(b)}", "{+emp(b)}", "{-seen(b)}"]
        );
    }

    #[test]
    fn multi_violation_repairs_compose() {
        let report = engine(
            "
            p(a). p(b).
            constraint c: forall X: p(X) -> q(X).
        ",
        )
        .repairs()
        .unwrap();
        // Each violation independently: {−p(a)}×{−p(b)} etc → 4 minimal.
        assert_eq!(report.repairs.len(), 4);
        assert!(report.repairs.iter().all(|r| r.len() == 2));
        for r in &report.repairs {
            assert!(engine("p(a). p(b). constraint c: forall X: p(X) -> q(X).")
                .repair_restores_consistency(r));
        }
    }

    #[test]
    fn stratified_negation_respected() {
        // present is derived with negation: the repairs are deleting
        // the blocker absent(a), asserting present(a) explicitly (the
        // store supports explicit facts on derived predicates), or
        // deleting the trigger seen(a).
        let report = engine(
            "
            present(X) :- emp(X), not absent(X).
            emp(a). absent(a). seen(a).
            constraint c: forall X: seen(X) -> present(X).
        ",
        )
        .repairs()
        .unwrap();
        assert_eq!(
            rendered(&report),
            vec!["{-absent(a)}", "{+present(a)}", "{-seen(a)}"]
        );
    }

    #[test]
    fn unsatisfiable_schema_classified() {
        let err = engine(
            "
            d(x).
            constraint want: exists X: d(X).
            constraint deny: forall X: d(X) -> false.
        ",
        )
        .repairs()
        .unwrap_err();
        assert!(
            matches!(
                err,
                RepairError::Unrepairable {
                    schema_unsatisfiable: true,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn branch_limit_is_a_typed_error() {
        let eng =
            engine("p(a). constraint c: forall X: p(X) -> q(X).").with_options(RepairOptions {
                max_branches: 1,
                ..RepairOptions::default()
            });
        let err = eng.repairs().unwrap_err();
        assert!(matches!(err, RepairError::BudgetExhausted { .. }), "{err}");
    }

    #[test]
    fn fact_budget_bounds_repair_size() {
        // Fixing all three violations needs 3 ops; a budget of 2 finds
        // nothing and says so.
        let eng = engine(
            "
            p(a). p(b). p(c).
            constraint c: forall X: p(X) -> q(X).
        ",
        )
        .with_options(RepairOptions {
            max_changes: 2,
            ..RepairOptions::default()
        });
        let err = eng.repairs().unwrap_err();
        assert!(
            matches!(
                err,
                RepairError::Unrepairable {
                    schema_unsatisfiable: false,
                    budget_clipped: true,
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn clipped_budgets_refuse_certain_answers() {
        // Two minimal repairs: {-p(a)} (size 1) and
        // {+q(a), -t1(a), …, -t4(a)} (size 5). With the default budget
        // of 4 the size-5 repair is clipped; intersecting over the
        // remaining repair alone would wrongly certify t1(a).
        let src = "
            p(a). t1(a). t2(a). t3(a). t4(a).
            constraint c: forall X: p(X) -> q(X).
            constraint d1: forall X: q(X) & t1(X) -> false.
            constraint d2: forall X: q(X) & t2(X) -> false.
            constraint d3: forall X: q(X) & t3(X) -> false.
            constraint d4: forall X: q(X) & t4(X) -> false.
        ";
        let eng = engine(src);
        let report = eng.repairs().unwrap();
        assert!(report.budget_clipped);
        assert!(!report.covers_all_minimal_repairs());
        assert_eq!(rendered(&report), vec!["{-p(a)}"]);
        let err = eng
            .consistent_answers(&[uniform_logic::parse_literal("t1(X)").unwrap()])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RepairError::BudgetExhausted {
                    budget_clipped: true,
                    ..
                }
            ),
            "{err}"
        );
        // A budget admitting the size-5 repair restores certainty.
        let eng = engine(src).with_options(RepairOptions {
            max_changes: 5,
            ..RepairOptions::default()
        });
        let report = eng.repairs().unwrap();
        assert!(report.covers_all_minimal_repairs(), "{report:?}");
        assert_eq!(report.repairs.len(), 2);
        let answers = eng
            .consistent_answers(&[uniform_logic::parse_literal("t1(X)").unwrap()])
            .unwrap();
        assert!(answers.is_empty(), "t1(a) is not certain: {answers:?}");
    }

    #[test]
    fn clipped_budgets_still_answer_outside_the_affected_closure() {
        // Same clipped fixture as above, plus a relation no constraint
        // (and no rule) can observe. The refusal must scope to the
        // affected closure: z's answers agree across every repair —
        // found or clipped — so they are certain regardless.
        let src = "
            p(a). t1(a). t2(a). t3(a). t4(a). z(a).
            constraint c: forall X: p(X) -> q(X).
            constraint d1: forall X: q(X) & t1(X) -> false.
            constraint d2: forall X: q(X) & t2(X) -> false.
            constraint d3: forall X: q(X) & t3(X) -> false.
            constraint d4: forall X: q(X) & t4(X) -> false.
        ";
        let eng = engine(src);
        assert!(!eng.repairs().unwrap().covers_all_minimal_repairs());
        let affected = eng.affected_closure();
        assert!(affected.contains(&Sym::new("t1")));
        assert!(!affected.contains(&Sym::new("z")));

        let rows = eng
            .consistent_answers(&[uniform_logic::parse_literal("z(X)").unwrap()])
            .unwrap();
        assert_eq!(rows.len(), 1, "z(a) is certain under a clipped budget");

        // Queries inside the closure still refuse.
        let err = eng
            .consistent_answers(&[uniform_logic::parse_literal("t1(X)").unwrap()])
            .unwrap_err();
        assert!(matches!(err, RepairError::BudgetExhausted { .. }));

        // Closed-formula certainty gets the same exemption.
        let rq = uniform_logic::normalize(&uniform_logic::parse_formula("exists X: z(X)").unwrap())
            .unwrap();
        assert!(eng.certainly_satisfies(&rq).unwrap());
    }

    #[test]
    fn certain_answers_intersect_repairs() {
        // Repairs of the violated state: {−p(a)} or {+q(a)}. p(b),q(b)
        // is untouched by both → certain; p(a) only survives in one.
        let eng = engine(
            "
            p(a). p(b). q(b).
            constraint c: forall X: p(X) -> q(X).
        ",
        );
        let answers = eng
            .consistent_answers(&[uniform_logic::parse_literal("p(X)").unwrap()])
            .unwrap();
        let names: Vec<String> = answers
            .iter()
            .map(|b| b[0].1.as_str().to_string())
            .collect();
        assert_eq!(names, vec!["b"]);
        // Closed-formula certainty.
        let holds = |s: &str| {
            eng.certainly_satisfies(
                &uniform_logic::normalize(&uniform_logic::parse_formula(s).unwrap()).unwrap(),
            )
            .unwrap()
        };
        assert!(holds("p(b)"));
        assert!(!holds("p(a)"));
        assert!(!holds("q(a)"));
    }

    #[test]
    fn repair_sets_are_canonical_and_ordered() {
        let a = RepairSet::from_ops(vec![
            Update::insert(Fact::parse_like("q", &["a"])),
            Update::delete(Fact::parse_like("p", &["a"])),
        ]);
        let b = RepairSet::from_ops(vec![
            Update::delete(Fact::parse_like("p", &["a"])),
            Update::insert(Fact::parse_like("q", &["a"])),
        ]);
        assert_eq!(a, b);
        let small = RepairSet::from_ops(vec![Update::insert(Fact::parse_like("q", &["a"]))]);
        assert!(small < a, "size-first ordering");
        assert!(small.is_subset_of(&a));
        assert!(!a.is_subset_of(&small));
    }
}
