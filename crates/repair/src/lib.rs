//! # uniform-repair
//!
//! Minimal repairs and consistent query answering — the *constructive*
//! use of the uniform approach (Bry, Decker & Manthey, EDBT 1988).
//!
//! The integrity-maintenance method of `uniform-integrity` tells a
//! writer *that* an update violates constraints; the satisfiability
//! search of `uniform-satisfiability` shows that the very same
//! enforcement machinery can *construct* states in which constraints
//! hold. This crate closes the loop for inconsistent states: given a
//! database whose constraints are violated, [`RepairEngine`] runs a
//! bounded enforcement search — insertions as in the §4 model
//! generation, plus the dual move of *deleting* explicit facts (and
//! falsifying rule derivations literal by literal, the completion
//! semantics' only-if direction) — and enumerates the **subset-minimal
//! repair sets**: smallest EDB insert/delete deltas whose application
//! restores every constraint.
//!
//! On top of the repair enumeration sits consistent query answering in
//! the sense of Arenas–Bertossi–Chomicki (and the SAT-based CAvSAT
//! system of Dixit & Kolaitis): an answer is *certain* iff it holds in
//! **every** minimal repair. Candidate repairs are evaluated through
//! [`OverlayEngine`](uniform_datalog::OverlayEngine) overlays — the
//! paper's `new(U, ·)` simulation — so no repaired database is ever
//! materialized.
//!
//! Repairs stay within the *active domain* (constants of the facts,
//! rules and constraints): no fresh constants are invented, matching
//! the convention of the CQA literature and making the search space
//! finite. The search is bounded by a fact budget
//! ([`RepairOptions::max_changes`]) and a branch limit
//! ([`RepairOptions::max_branches`]); blowing the branch limit is the
//! typed [`RepairError::BudgetExhausted`].
//!
//! The enforcement search is one of two backends. [`RepairBackend`]
//! selects between it and the CAvSAT-style SAT reduction of [`sat`] —
//! the repair space encoded as clauses over a bundled CDCL solver,
//! minimal repairs enumerated by iterated SAT with blocking clauses,
//! and *preference orders* (per-relation weights, protected relations,
//! any [`RepairChooser`]) answered as branch-and-bound weighted MaxSAT
//! via [`RepairEngine::preferred_repair`]. `RepairBackend::Auto` runs
//! the search and escalates to SAT exactly when the search cannot prove
//! it covered every minimal repair.
//!
//! ```
//! use uniform_datalog::Database;
//! use uniform_repair::RepairEngine;
//!
//! // p(a) holds but q(a) does not: the constraint is violated.
//! let db = Database::parse("
//!     p(a).
//!     constraint c: forall X: p(X) -> q(X).
//! ").unwrap();
//! let engine = RepairEngine::new(
//!     db.facts().clone(),
//!     db.rules().clone(),
//!     db.constraints().to_vec(),
//! );
//! let report = engine.repairs().unwrap();
//! // Two minimal repairs: insert q(a), or delete p(a).
//! assert_eq!(report.repairs.len(), 2);
//! assert!(report.complete);
//! ```

pub mod cqa;
pub mod engine;
pub mod sat;

pub use cqa::{
    certain_answers, certain_answers_bound, certainly_satisfies, certainly_satisfies_bound,
    intersect_over_repairs,
};
pub use engine::{
    RepairBackend, RepairEngine, RepairError, RepairOptions, RepairReport, RepairSet, RepairStats,
};
pub use sat::{PreferredRepair, RepairChooser, RepairPreferences};

/// What a guarded commit pipeline does when a transaction's integrity
/// check fails. Consumed by `uniform::ConcurrentDatabase`; defined here
/// so every layer speaks the same policy language.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViolationPolicy {
    /// Refuse the transaction (the classical guarded-update behavior).
    #[default]
    Reject,
    /// Refuse the transaction, but attach the minimal repair of the
    /// would-be state as a diagnostic: what the writer could have
    /// submitted instead.
    Explain,
    /// Fold the minimal repair's delta into the transaction and commit
    /// the combination: the repaired commit flows through conflict
    /// detection and incremental model maintenance like any other.
    AutoRepair,
}
